package pseudocode

import (
	"errors"
	"fmt"
	"sort"
)

// ExploreOpts configures exhaustive state-space exploration.
type ExploreOpts struct {
	Sem Semantics
	// MaxStates bounds the number of distinct states visited
	// (0 = DefaultMaxStates). When exceeded, the result is marked Truncated.
	MaxStates int
	// MaxDepth bounds the number of steps along any one execution
	// (0 = DefaultMaxDepth).
	MaxDepth int
	// Predicate, when non-nil, is evaluated at every visited state; the
	// result records whether any state satisfied it. Used for the study's
	// "could this happen?" reachability questions.
	Predicate func(w *World) bool
	// Predicates, when non-empty, are all evaluated at every visited state;
	// PredicateHits[i] records whether Predicates[i] matched anywhere. This
	// lets one exploration answer a whole question bank.
	Predicates []func(w *World) bool
	// NoMemo disables state memoization (ablation): the exploration then
	// walks the execution *tree* instead of the state *graph*. Only safe
	// for acyclic programs; bounded by MaxStates/MaxDepth regardless.
	NoMemo bool
	// TrackGraph records the state graph so the result can answer liveness
	// questions: DivergentStates counts states from which no terminal is
	// reachable (livelock — e.g. an unconditional message-deferral loop).
	// Costs memory proportional to the edge count. Incompatible with
	// NoMemo.
	TrackGraph bool
	// TrackWitness records parent links so the result carries a concrete
	// schedule (sequence of Choices) reaching the first deadlock found —
	// a counterexample you can replay with ReplayWitness. Incompatible
	// with NoMemo.
	TrackWitness bool
}

// Exploration bounds defaults.
const (
	DefaultMaxStates = 2_000_000
	DefaultMaxDepth  = 100_000
)

// ErrExploreError wraps a runtime error found on some execution path.
var ErrExploreError = errors.New("pseudocode: runtime error during exploration")

// Terminal is one distinct terminal configuration found by Explore.
type Terminal struct {
	Kind    TerminalKind
	Output  string
	Blocked []string // for deadlocks
}

// ExploreResult summarizes the full execution space.
type ExploreResult struct {
	// Terminals are the distinct terminal configurations (by state encoding).
	Terminals []Terminal
	// Outputs is the sorted set of distinct outputs over non-deadlocked
	// terminals — Figure 3/5's "possibility 1 / possibility 2" sets.
	Outputs []string
	// DeadlockOutputs is the sorted set of outputs at deadlocked terminals.
	DeadlockOutputs []string
	// Deadlocks counts distinct deadlocked terminal states.
	Deadlocks int
	// StatesVisited counts distinct states explored.
	StatesVisited int
	// PredicateHit is true when opts.Predicate matched some visited state.
	PredicateHit bool
	// PredicateHits mirrors opts.Predicates.
	PredicateHits []bool
	// DivergentStates counts states that cannot reach any terminal state
	// (only computed with opts.TrackGraph; livelocks make it non-zero).
	DivergentStates int
	// LivelockFree reports that every state can reach a terminal (only
	// meaningful with opts.TrackGraph and an untruncated exploration).
	LivelockFree bool
	// DeadlockWitness is a schedule from the initial state to the first
	// deadlock found (with opts.TrackWitness). Empty when no deadlock.
	DeadlockWitness []Choice
	// Truncated is true when a bound was hit; the result is then a lower
	// bound on the execution space.
	Truncated bool
}

// HasDeadlock reports whether any execution deadlocks.
func (r *ExploreResult) HasDeadlock() bool { return r.Deadlocks > 0 }

// OutputSet returns the distinct outputs as a set.
func (r *ExploreResult) OutputSet() map[string]bool {
	m := make(map[string]bool, len(r.Outputs))
	for _, o := range r.Outputs {
		m[o] = true
	}
	return m
}

// Explore enumerates every reachable state of prog under the semantics at
// atomic-statement granularity, merging states that are identical under
// canonical encoding. It returns the distinct terminal configurations and
// the set of possible outputs — the "space of executions".
func Explore(prog *Compiled, opts ExploreOpts) (*ExploreResult, error) {
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	maxDepth := opts.MaxDepth
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	res := &ExploreResult{}
	visited := map[string]bool{}
	terminalSeen := map[string]bool{}
	outputSet := map[string]bool{}
	deadlockOutputSet := map[string]bool{}

	type node struct {
		w     *World
		depth int
	}
	res.PredicateHits = make([]bool, len(opts.Predicates))
	observe := func(w *World) {
		if opts.Predicate != nil && opts.Predicate(w) {
			res.PredicateHit = true
		}
		for i, p := range opts.Predicates {
			if !res.PredicateHits[i] && p(w) {
				res.PredicateHits[i] = true
			}
		}
	}
	if (opts.TrackGraph || opts.TrackWitness) && opts.NoMemo {
		return nil, errors.New("pseudocode: graph/witness tracking requires memoization")
	}
	var edges map[string][]string
	var terminalEncs []string
	if opts.TrackGraph {
		edges = map[string][]string{}
	}
	var parents map[string]parentLink
	if opts.TrackWitness {
		parents = map[string]parentLink{}
	}

	start := NewWorld(prog, opts.Sem)
	stack := []node{{w: start, depth: 0}}
	visited[start.Encode()] = true
	res.StatesVisited = 1
	observe(start)

	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		var parentEnc string
		if opts.TrackGraph || opts.TrackWitness {
			parentEnc = n.w.Encode()
		}
		choices := n.w.Runnable()
		if len(choices) == 0 {
			kind := n.w.Classify()
			enc := n.w.Encode()
			if opts.TrackWitness && kind == Deadlocked && res.DeadlockWitness == nil {
				res.DeadlockWitness = rebuildWitness(parents, enc)
			}
			if opts.TrackGraph && !terminalSeen[enc] {
				terminalEncs = append(terminalEncs, enc)
			}
			if !terminalSeen[enc] {
				terminalSeen[enc] = true
				term := Terminal{Kind: kind, Output: n.w.Output()}
				if kind == Deadlocked {
					term.Blocked = n.w.BlockedTasks()
					res.Deadlocks++
					deadlockOutputSet[n.w.Output()] = true
				} else {
					outputSet[n.w.Output()] = true
				}
				res.Terminals = append(res.Terminals, term)
			}
			continue
		}
		if n.depth >= maxDepth {
			res.Truncated = true
			continue
		}
		for _, ch := range choices {
			child := n.w.Clone()
			if err := child.Step(ch); err != nil {
				return res, errors.Join(ErrExploreError, err)
			}
			nVisited := len(visited)
			if opts.NoMemo {
				nVisited = res.StatesVisited
			}
			if nVisited >= maxStates {
				res.Truncated = true
				continue
			}
			if !opts.NoMemo {
				enc := child.Encode()
				if opts.TrackGraph {
					edges[parentEnc] = append(edges[parentEnc], enc)
				}
				if visited[enc] {
					continue
				}
				visited[enc] = true
				if opts.TrackWitness {
					parents[enc] = parentLink{parent: parentEnc, ch: ch}
				}
			}
			res.StatesVisited++
			observe(child)
			stack = append(stack, node{w: child, depth: n.depth + 1})
		}
	}
	for o := range outputSet {
		res.Outputs = append(res.Outputs, o)
	}
	sort.Strings(res.Outputs)
	for o := range deadlockOutputSet {
		res.DeadlockOutputs = append(res.DeadlockOutputs, o)
	}
	sort.Strings(res.DeadlockOutputs)

	if opts.TrackGraph && !res.Truncated {
		// Liveness: a state is divergent if no terminal is reachable from
		// it. Compute by reverse BFS from the terminals.
		rev := map[string][]string{}
		for from, tos := range edges {
			for _, to := range tos {
				rev[to] = append(rev[to], from)
			}
		}
		reach := make(map[string]bool, len(visited))
		queue := append([]string(nil), terminalEncs...)
		for _, enc := range queue {
			reach[enc] = true
		}
		for len(queue) > 0 {
			cur := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, prev := range rev[cur] {
				if !reach[prev] {
					reach[prev] = true
					queue = append(queue, prev)
				}
			}
		}
		res.DivergentStates = len(visited) - len(reach)
		res.LivelockFree = res.DivergentStates == 0
	}
	return res, nil
}

// parentLink records how a state was first reached during exploration.
type parentLink struct {
	parent string
	ch     Choice
}

// rebuildWitness walks parent links from a terminal encoding back to the
// initial state and returns the schedule in execution order.
func rebuildWitness(parents map[string]parentLink, enc string) []Choice {
	var rev []Choice
	cur := enc
	for {
		link, ok := parents[cur]
		if !ok {
			break
		}
		rev = append(rev, link.ch)
		cur = link.parent
	}
	out := make([]Choice, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// ReplayWitness executes a schedule produced by TrackWitness on a fresh
// world, returning the trace of steps and the final world. It fails if the
// schedule doesn't replay (wrong program or semantics).
func ReplayWitness(prog *Compiled, sem Semantics, witness []Choice) ([]StepEvent, *World, error) {
	w := NewWorld(prog, sem)
	var events []StepEvent
	w.Trace = func(ev StepEvent) { events = append(events, ev) }
	for i, ch := range witness {
		ok := false
		for _, valid := range w.Runnable() {
			if valid == ch {
				ok = true
				break
			}
		}
		if !ok {
			return events, w, fmt.Errorf("pseudocode: witness step %d (%+v) is not runnable", i, ch)
		}
		if err := w.Step(ch); err != nil {
			return events, w, err
		}
	}
	return events, w, nil
}

// ExploreSource parses, compiles and explores src.
func ExploreSource(src string, opts ExploreOpts) (*ExploreResult, error) {
	prog, err := CompileSource(src)
	if err != nil {
		return nil, err
	}
	return Explore(prog, opts)
}

// Reachable reports whether pred holds in some reachable state of src under
// sem — the primitive the study's Test-1 questions are built on.
func Reachable(src string, sem Semantics, pred func(w *World) bool) (bool, error) {
	res, err := ExploreSource(src, ExploreOpts{Sem: sem, Predicate: pred})
	if err != nil {
		return false, err
	}
	return res.PredicateHit, nil
}
