package pseudocode

import (
	"errors"
	"fmt"
	"sort"
)

// ExploreOpts configures exhaustive state-space exploration.
type ExploreOpts struct {
	Sem Semantics
	// MaxStates bounds the number of distinct states visited
	// (0 = DefaultMaxStates). When exceeded, the result is marked Truncated.
	MaxStates int
	// MaxDepth bounds the number of steps along any one execution
	// (0 = DefaultMaxDepth).
	MaxDepth int
	// Predicate, when non-nil, is evaluated at every visited state; the
	// result records whether any state satisfied it. Used for the study's
	// "could this happen?" reachability questions.
	Predicate func(w *World) bool
	// Predicates, when non-empty, are all evaluated at every visited state;
	// PredicateHits[i] records whether Predicates[i] matched anywhere. This
	// lets one exploration answer a whole question bank.
	Predicates []func(w *World) bool
	// NoMemo disables state memoization (ablation): the exploration then
	// walks the execution *tree* instead of the state *graph*. Only safe
	// for acyclic programs; bounded by MaxStates/MaxDepth regardless.
	NoMemo bool
	// TrackGraph records the state graph so the result can answer liveness
	// questions: DivergentStates counts states from which no terminal is
	// reachable (livelock — e.g. an unconditional message-deferral loop).
	// Costs memory proportional to the edge count. Incompatible with
	// NoMemo; disables POR and parallel search.
	TrackGraph bool
	// TrackWitness records parent links so the result carries a concrete
	// schedule (sequence of Choices) reaching the first deadlock found —
	// a counterexample you can replay with ReplayWitness. Incompatible
	// with NoMemo; disables parallel search (POR still applies).
	TrackWitness bool
	// POR enables sleep-set partial-order reduction: provably commuting
	// interleavings are explored once instead of in every order. The
	// reduction prunes transitions, never states — Outputs, Deadlocks,
	// StatesVisited, and predicate hits are identical to an unreduced run;
	// only Transitions shrinks. Ignored under NoMemo or TrackGraph (the
	// reduced graph's edge set would be incomplete).
	POR bool
	// Workers > 1 explores the state graph with that many goroutines over
	// a sharded fingerprint set. Results are merged deterministically
	// (Terminals sorted canonically). Predicates must then be safe to call
	// concurrently and must not retain the *World. Ignored (forced to 1)
	// under NoMemo, TrackGraph, or TrackWitness.
	Workers int
	// AuditEncodings retains the full canonical encoding of every state
	// alongside its 128-bit fingerprint and counts fingerprint collisions
	// (two distinct encodings hashing identically) in AuditCollisions.
	// This opt-in mode restores the seed explorer's memory profile; it
	// exists so tests can certify that fingerprint-based deduplication
	// merged no distinct states in a given run.
	AuditEncodings bool
}

// Exploration bounds defaults.
const (
	DefaultMaxStates = 2_000_000
	DefaultMaxDepth  = 100_000
)

// ErrExploreError wraps a runtime error found on some execution path.
var ErrExploreError = errors.New("pseudocode: runtime error during exploration")

// Terminal is one distinct terminal configuration found by Explore.
type Terminal struct {
	Kind    TerminalKind
	Output  string
	Blocked []string // for deadlocks
}

// ExploreResult summarizes the full execution space.
type ExploreResult struct {
	// Terminals are the distinct terminal configurations (by state encoding).
	Terminals []Terminal
	// Outputs is the sorted set of distinct outputs over non-deadlocked
	// terminals — Figure 3/5's "possibility 1 / possibility 2" sets.
	Outputs []string
	// DeadlockOutputs is the sorted set of outputs at deadlocked terminals.
	DeadlockOutputs []string
	// Deadlocks counts distinct deadlocked terminal states.
	Deadlocks int
	// StatesVisited counts distinct states explored.
	StatesVisited int
	// Transitions counts atomic steps executed during exploration. Without
	// POR this is the edge count of the explored graph; POR lowers it (the
	// savings metric reported by pcexplore -stats).
	Transitions int
	// PredicateHit is true when opts.Predicate matched some visited state.
	PredicateHit bool
	// PredicateHits mirrors opts.Predicates.
	PredicateHits []bool
	// DivergentStates counts states that cannot reach any terminal state
	// (only computed with opts.TrackGraph; livelocks make it non-zero).
	DivergentStates int
	// LivelockFree reports that every state can reach a terminal (only
	// meaningful with opts.TrackGraph and an untruncated exploration).
	LivelockFree bool
	// DeadlockWitness is a schedule from the initial state to the first
	// deadlock found (with opts.TrackWitness). Empty when no deadlock.
	DeadlockWitness []Choice
	// AuditCollisions counts fingerprint collisions detected with
	// opts.AuditEncodings (expected: always zero).
	AuditCollisions int
	// Truncated is true when a bound was hit; the result is then a lower
	// bound on the execution space.
	Truncated bool
}

// HasDeadlock reports whether any execution deadlocks.
func (r *ExploreResult) HasDeadlock() bool { return r.Deadlocks > 0 }

// OutputSet returns the distinct outputs as a set.
func (r *ExploreResult) OutputSet() map[string]bool {
	m := make(map[string]bool, len(r.Outputs))
	for _, o := range r.Outputs {
		m[o] = true
	}
	return m
}

// Explore enumerates every reachable state of prog under the semantics at
// atomic-statement granularity, merging states that are identical under
// canonical encoding. It returns the distinct terminal configurations and
// the set of possible outputs — the "space of executions".
func Explore(prog *Compiled, opts ExploreOpts) (*ExploreResult, error) {
	if (opts.TrackGraph || opts.TrackWitness) && opts.NoMemo {
		return nil, errors.New("pseudocode: graph/witness tracking requires memoization")
	}
	if opts.Workers > 1 && !opts.NoMemo && !opts.TrackGraph && !opts.TrackWitness {
		return exploreParallel(prog, opts)
	}
	return exploreSeq(prog, opts)
}

func exploreBounds(opts ExploreOpts) (maxStates, maxDepth int) {
	maxStates = opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	maxDepth = opts.MaxDepth
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	return maxStates, maxDepth
}

// sleepEntry is one transition the search can skip at a state: it commutes
// with every transition explored since it was added, so the interleaving it
// would start has already been covered in another order.
type sleepEntry struct {
	ch Choice
	fp *stepFP
}

// stepFootprint returns the static footprint of the atomic step choice ch
// would execute from the current state.
func (w *World) stepFootprint(ch Choice) *stepFP {
	f := w.Tasks[ch.TaskIdx].top()
	if f == nil {
		return universalStepFP
	}
	return f.code.stepFPs[f.ip]
}

// sleepCovered reports whether stored ⊆ sleep (by choice): a state already
// expanded with sleep set `stored` need not be re-expanded on an arrival
// with a larger sleep set.
func sleepCovered(stored []Choice, sleep []sleepEntry) bool {
	for _, s := range stored {
		found := false
		for i := range sleep {
			if sleep[i].ch == s {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// sleepIntersect keeps the entries of sleep whose choice is in stored.
func sleepIntersect(stored []Choice, sleep []sleepEntry) []sleepEntry {
	var out []sleepEntry
	for i := range sleep {
		for _, s := range stored {
			if sleep[i].ch == s {
				out = append(out, sleep[i])
				break
			}
		}
	}
	return out
}

func sleepChoices(sleep []sleepEntry) []Choice {
	if len(sleep) == 0 {
		return nil
	}
	out := make([]Choice, len(sleep))
	for i := range sleep {
		out[i] = sleep[i].ch
	}
	return out
}

// exNode is one frontier entry of the sequential search.
type exNode struct {
	w     *World
	depth int
	fp    fingerprint
	sleep []sleepEntry
}

func exploreSeq(prog *Compiled, opts ExploreOpts) (*ExploreResult, error) {
	maxStates, maxDepth := exploreBounds(opts)
	por := opts.POR && !opts.NoMemo && !opts.TrackGraph
	// Recycling worlds into the pools is only safe when no user predicate
	// could have retained a *World.
	canRecycle := opts.Predicate == nil && len(opts.Predicates) == 0

	res := &ExploreResult{}
	res.PredicateHits = make([]bool, len(opts.Predicates))
	observe := func(w *World) {
		if opts.Predicate != nil && opts.Predicate(w) {
			res.PredicateHit = true
		}
		for i, p := range opts.Predicates {
			if !res.PredicateHits[i] && p(w) {
				res.PredicateHits[i] = true
			}
		}
	}

	visited := map[fingerprint]struct{}{}
	var auditEnc map[fingerprint]string
	if opts.AuditEncodings {
		auditEnc = map[fingerprint]string{}
	}
	var sleepStore map[fingerprint][]Choice
	if por {
		sleepStore = map[fingerprint][]Choice{}
	}
	terminalSeen := map[fingerprint]bool{}
	outputSet := map[string]bool{}
	deadlockOutputSet := map[string]bool{}
	var edges map[fingerprint][]fingerprint
	var terminalFPs []fingerprint
	if opts.TrackGraph {
		edges = map[fingerprint][]fingerprint{}
	}
	var parents map[fingerprint]parentLink
	if opts.TrackWitness {
		parents = map[fingerprint]parentLink{}
	}

	// All state encodings stream through one reused buffer: a state is
	// encoded exactly once, hashed, and the bytes are dropped (unless
	// auditing).
	var encBuf []byte
	encodeFP := func(w *World) fingerprint {
		encBuf = w.appendEncode(encBuf[:0])
		return fingerprintOf(encBuf)
	}

	start := NewWorld(prog, opts.Sem)
	start.alloc = &alloc{} // this lane's private container free list
	startFP := encodeFP(start)
	if !opts.NoMemo {
		visited[startFP] = struct{}{}
		if auditEnc != nil {
			auditEnc[startFP] = string(encBuf)
		}
		if por {
			sleepStore[startFP] = nil
		}
	}
	res.StatesVisited = 1
	observe(start)
	stack := []exNode{{w: start, depth: 0, fp: startFP}}

	var choiceBuf []Choice
	var live []Choice
	var liveFPs []*stepFP

	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		choiceBuf = n.w.runnableInto(choiceBuf)
		choices := choiceBuf
		if len(choices) == 0 {
			kind := n.w.classifyBlocked()
			tfp := n.fp
			if opts.NoMemo {
				tfp = encodeFP(n.w)
			}
			if opts.TrackWitness && kind == Deadlocked && res.DeadlockWitness == nil {
				res.DeadlockWitness = rebuildWitness(parents, tfp)
			}
			if !terminalSeen[tfp] {
				terminalSeen[tfp] = true
				if opts.TrackGraph {
					terminalFPs = append(terminalFPs, tfp)
				}
				term := Terminal{Kind: kind, Output: n.w.Output()}
				if kind == Deadlocked {
					term.Blocked = n.w.BlockedTasks()
					res.Deadlocks++
					deadlockOutputSet[term.Output] = true
				} else {
					outputSet[term.Output] = true
				}
				res.Terminals = append(res.Terminals, term)
			}
			if canRecycle {
				n.w.recycle()
			}
			continue
		}
		if n.depth >= maxDepth {
			res.Truncated = true
			if canRecycle {
				n.w.recycle()
			}
			continue
		}

		// live = enabled choices not in the sleep set.
		live = live[:0]
		if por && len(n.sleep) > 0 {
			for _, ch := range choices {
				slept := false
				for i := range n.sleep {
					if n.sleep[i].ch == ch {
						slept = true
						break
					}
				}
				if !slept {
					live = append(live, ch)
				}
			}
		} else {
			live = append(live, choices...)
		}
		if por {
			liveFPs = liveFPs[:0]
			for _, ch := range live {
				liveFPs = append(liveFPs, n.w.stepFootprint(ch))
			}
		}

		reused := false
		for i, ch := range live {
			// Bound check before paying for Clone+Step: once the state
			// budget is spent no child can be admitted, so stop expanding
			// the whole frontier.
			if !opts.NoMemo {
				if len(visited) >= maxStates {
					res.Truncated = true
					break
				}
			} else if res.StatesVisited >= maxStates {
				res.Truncated = true
				break
			}
			var child *World
			if i == len(live)-1 {
				// Clone elision: the node's own world serves as the last
				// child (every earlier child took a copy).
				child = n.w
				reused = true
			} else {
				child = n.w.Clone()
			}
			if err := child.Step(ch); err != nil {
				return res, errors.Join(ErrExploreError, err)
			}
			res.Transitions++
			if opts.NoMemo {
				res.StatesVisited++
				observe(child)
				stack = append(stack, exNode{w: child, depth: n.depth + 1})
				continue
			}
			var childSleep []sleepEntry
			if por {
				chFP := liveFPs[i]
				for j := range n.sleep {
					e := &n.sleep[j]
					if e.ch.TaskIdx != ch.TaskIdx && independentSteps(e.fp, chFP) {
						childSleep = append(childSleep, *e)
					}
				}
				for j := 0; j < i; j++ {
					if live[j].TaskIdx != ch.TaskIdx && independentSteps(liveFPs[j], chFP) {
						childSleep = append(childSleep, sleepEntry{ch: live[j], fp: liveFPs[j]})
					}
				}
			}
			cfp := encodeFP(child)
			if opts.TrackGraph {
				edges[n.fp] = append(edges[n.fp], cfp)
			}
			if _, dup := visited[cfp]; dup {
				if auditEnc != nil && auditEnc[cfp] != string(encBuf) {
					res.AuditCollisions++
				}
				if por {
					// Covering rule: a state expanded with sleep set S is
					// only covered for arrivals with sleep ⊇ S; a smaller
					// arrival re-expands it with the intersection (the
					// stored set strictly shrinks, so this terminates).
					stored := sleepStore[cfp]
					if !sleepCovered(stored, childSleep) {
						inter := sleepIntersect(stored, childSleep)
						sleepStore[cfp] = sleepChoices(inter)
						stack = append(stack, exNode{w: child, depth: n.depth + 1, fp: cfp, sleep: inter})
						continue
					}
				}
				if child == n.w {
					reused = false
				} else if canRecycle {
					child.recycle()
				}
				continue
			}
			visited[cfp] = struct{}{}
			if auditEnc != nil {
				auditEnc[cfp] = string(encBuf)
			}
			if por {
				sleepStore[cfp] = sleepChoices(childSleep)
			}
			if opts.TrackWitness {
				parents[cfp] = parentLink{parent: n.fp, ch: ch}
			}
			res.StatesVisited++
			observe(child)
			stack = append(stack, exNode{w: child, depth: n.depth + 1, fp: cfp, sleep: childSleep})
		}
		if !reused && canRecycle {
			n.w.recycle()
		}
	}

	for o := range outputSet {
		res.Outputs = append(res.Outputs, o)
	}
	sort.Strings(res.Outputs)
	for o := range deadlockOutputSet {
		res.DeadlockOutputs = append(res.DeadlockOutputs, o)
	}
	sort.Strings(res.DeadlockOutputs)

	if opts.TrackGraph && !res.Truncated {
		// Liveness: a state is divergent if no terminal is reachable from
		// it. Compute by reverse BFS from the terminals.
		rev := map[fingerprint][]fingerprint{}
		for from, tos := range edges {
			for _, to := range tos {
				rev[to] = append(rev[to], from)
			}
		}
		reach := make(map[fingerprint]bool, len(visited))
		queue := append([]fingerprint(nil), terminalFPs...)
		for _, fp := range queue {
			reach[fp] = true
		}
		for len(queue) > 0 {
			cur := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, prev := range rev[cur] {
				if !reach[prev] {
					reach[prev] = true
					queue = append(queue, prev)
				}
			}
		}
		res.DivergentStates = len(visited) - len(reach)
		res.LivelockFree = res.DivergentStates == 0
	}
	return res, nil
}

// parentLink records how a state was first reached during exploration.
type parentLink struct {
	parent fingerprint
	ch     Choice
}

// rebuildWitness walks parent links from a terminal fingerprint back to the
// initial state and returns the schedule in execution order.
func rebuildWitness(parents map[fingerprint]parentLink, fp fingerprint) []Choice {
	var rev []Choice
	cur := fp
	for {
		link, ok := parents[cur]
		if !ok {
			break
		}
		rev = append(rev, link.ch)
		cur = link.parent
	}
	out := make([]Choice, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// ReplayWitness executes a schedule produced by TrackWitness on a fresh
// world, returning the trace of steps and the final world. It fails if the
// schedule doesn't replay (wrong program or semantics).
func ReplayWitness(prog *Compiled, sem Semantics, witness []Choice) ([]StepEvent, *World, error) {
	w := NewWorld(prog, sem)
	var events []StepEvent
	w.Trace = func(ev StepEvent) { events = append(events, ev) }
	for i, ch := range witness {
		ok := false
		for _, valid := range w.Runnable() {
			if valid == ch {
				ok = true
				break
			}
		}
		if !ok {
			return events, w, fmt.Errorf("pseudocode: witness step %d (%+v) is not runnable", i, ch)
		}
		if err := w.Step(ch); err != nil {
			return events, w, err
		}
	}
	return events, w, nil
}

// ExploreSource parses, compiles and explores src.
func ExploreSource(src string, opts ExploreOpts) (*ExploreResult, error) {
	prog, err := CompileSource(src)
	if err != nil {
		return nil, err
	}
	return Explore(prog, opts)
}

// Reachable reports whether pred holds in some reachable state of src under
// sem — the primitive the study's Test-1 questions are built on.
func Reachable(src string, sem Semantics, pred func(w *World) bool) (bool, error) {
	res, err := ExploreSource(src, ExploreOpts{Sem: sem, Predicate: pred})
	if err != nil {
		return false, err
	}
	return res.PredicateHit, nil
}
