package pseudocode

// --- Expressions ---

// Expr is any pseudocode expression node.
type Expr interface{ exprNode() }

// IntLit is an integer literal.
type IntLit struct{ Value int64 }

// FloatLit is a floating-point literal.
type FloatLit struct{ Value float64 }

// StrLit is a string literal.
type StrLit struct{ Value string }

// BoolLit is True or False.
type BoolLit struct{ Value bool }

// NullLit is the Null literal.
type NullLit struct{}

// Ident references a variable (local, field via scoping, or global).
type Ident struct{ Name string }

// SelfExpr is the `self` receiver inside a class method.
type SelfExpr struct{}

// FieldExpr accesses a field of an object expression (obj.name).
type FieldExpr struct {
	Obj  Expr
	Name string
}

// BinaryExpr applies a binary operator: + - * / % < <= > >= == != AND OR.
type BinaryExpr struct {
	Op       string
	Lhs, Rhs Expr
}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op  string
	Rhs Expr
}

// CallExpr calls a global function by name.
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

// MethodCallExpr calls a method on an object expression.
type MethodCallExpr struct {
	Obj  Expr
	Name string
	Args []Expr
	Line int
}

// MessageExpr constructs a message value: MESSAGE.name(args).
type MessageExpr struct {
	Name string
	Args []Expr
}

// NewExpr instantiates a class: new ClassName(args).
type NewExpr struct {
	Class string
	Args  []Expr
	Line  int
}

func (*IntLit) exprNode()         {}
func (*FloatLit) exprNode()       {}
func (*StrLit) exprNode()         {}
func (*BoolLit) exprNode()        {}
func (*NullLit) exprNode()        {}
func (*Ident) exprNode()          {}
func (*SelfExpr) exprNode()       {}
func (*FieldExpr) exprNode()      {}
func (*BinaryExpr) exprNode()     {}
func (*UnaryExpr) exprNode()      {}
func (*CallExpr) exprNode()       {}
func (*MethodCallExpr) exprNode() {}
func (*MessageExpr) exprNode()    {}
func (*NewExpr) exprNode()        {}

// --- Statements ---

// Stmt is any pseudocode statement node.
type Stmt interface{ stmtNode() }

// AssignStmt assigns to an identifier, self.field, or obj.field target.
type AssignStmt struct {
	Target Expr // *Ident or *FieldExpr
	Value  Expr
	Line   int
}

// PrintStmt is PRINT (no newline, matching the figures' spacing-in-literal
// style) or PRINTLN.
type PrintStmt struct {
	Value   Expr
	Newline bool
	Line    int
}

// IfStmt is IF/ELSE IF/ELSE/ENDIF. ElseIfs are flattened into nested Else.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt // may contain a single IfStmt for ELSE IF chains
	Line int
}

// WhileStmt is WHILE cond ... ENDWHILE.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
	Line int
}

// DefineStmt declares a function (top level) or method (inside CLASS).
type DefineStmt struct {
	Name   string
	Params []string
	Body   []Stmt
	Line   int
}

// ParaStmt runs each child statement as a concurrent task and joins.
type ParaStmt struct {
	Tasks []Stmt
	Line  int
}

// ExcAccStmt is an exclusive-access block guarding the variables it touches.
type ExcAccStmt struct {
	Body []Stmt
	Line int
}

// WaitStmt is WAIT(): release the enclosing exclusive access and suspend.
type WaitStmt struct{ Line int }

// NotifyStmt is NOTIFY(): wake all waiters.
type NotifyStmt struct{ Line int }

// SendStmt is Send(msg).To(target): asynchronous message send.
type SendStmt struct {
	Msg    Expr
	Target Expr
	Line   int
}

// RecvClause is one ON_RECEIVING arm: MESSAGE.name(params) body.
type RecvClause struct {
	MsgName string
	Params  []string
	Body    []Stmt
	Line    int
}

// ReceiveStmt is an ON_RECEIVING dispatch. A method whose body consists of
// a ReceiveStmt runs as a persistent receiver task.
type ReceiveStmt struct {
	Clauses []RecvClause
	Line    int
}

// ClassStmt declares a class with methods.
type ClassStmt struct {
	Name    string
	Methods []*DefineStmt
	Line    int
}

// ReturnStmt returns from a function, optionally with a value.
type ReturnStmt struct {
	Value Expr // may be nil
	Line  int
}

// ExprStmt evaluates an expression for its effects (a call statement).
type ExprStmt struct {
	E    Expr
	Line int
}

func (*AssignStmt) stmtNode()  {}
func (*PrintStmt) stmtNode()   {}
func (*IfStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()   {}
func (*DefineStmt) stmtNode()  {}
func (*ParaStmt) stmtNode()    {}
func (*ExcAccStmt) stmtNode()  {}
func (*WaitStmt) stmtNode()    {}
func (*NotifyStmt) stmtNode()  {}
func (*SendStmt) stmtNode()    {}
func (*ReceiveStmt) stmtNode() {}
func (*ClassStmt) stmtNode()   {}
func (*ReturnStmt) stmtNode()  {}
func (*ExprStmt) stmtNode()    {}

// Program is a parsed pseudocode source file.
type Program struct {
	Stmts []Stmt
}
