package pseudocode

import (
	"embed"
	"sort"
	"strings"
)

//go:embed testdata/*.pc
var corpusFS embed.FS

// CorpusPrograms returns the package's pseudocode example corpus (the
// figure programs, quiz programs, bridge and philosophers models) keyed by
// base name without the .pc extension. The corpus backs the equivalence
// sweep tests and the benchtables exploration tables, so both always run
// against the same programs.
func CorpusPrograms() map[string]string {
	entries, err := corpusFS.ReadDir("testdata")
	if err != nil {
		panic("pseudocode: embedded corpus missing: " + err.Error())
	}
	out := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".pc") {
			continue
		}
		data, err := corpusFS.ReadFile("testdata/" + e.Name())
		if err != nil {
			panic("pseudocode: embedded corpus unreadable: " + err.Error())
		}
		out[strings.TrimSuffix(e.Name(), ".pc")] = string(data)
	}
	return out
}

// CorpusNames returns the corpus program names in sorted order.
func CorpusNames() []string {
	progs := CorpusPrograms()
	names := make([]string, 0, len(progs))
	for name := range progs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
