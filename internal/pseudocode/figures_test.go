package pseudocode

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func loadFixture(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func exploreFixture(t *testing.T, name string, sem Semantics) *ExploreResult {
	t.Helper()
	res, err := ExploreSource(loadFixture(t, name), ExploreOpts{Sem: sem})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if res.Truncated {
		t.Fatalf("%s: exploration truncated", name)
	}
	return res
}

// --- Figure 1 ---

func TestFig1Assignments(t *testing.T) {
	res, err := RunSource(loadFixture(t, "fig1_assign.pc"), RunOpts{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := "0\nJohn Smith\nTrue\n3.3\n"
	if res.Output != want {
		t.Fatalf("output = %q, want %q", res.Output, want)
	}
	if res.Kind != Completed {
		t.Fatalf("kind = %v", res.Kind)
	}
}

// --- Figure 2 ---

func TestFig2Conditional(t *testing.T) {
	res, err := RunSource(loadFixture(t, "fig2_grades.pc"), RunOpts{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "B\n" {
		t.Fatalf("output = %q, want \"B\\n\" (testScore = 88)", res.Output)
	}
}

func TestFig2AllBranches(t *testing.T) {
	for _, tc := range []struct {
		score int
		want  string
	}{{95, "A\n"}, {88, "B\n"}, {73, "C\n"}, {12, "F\n"}, {90, "A\n"}, {80, "B\n"}, {70, "C\n"}} {
		src := loadFixture(t, "fig2_grades.pc")
		// Override the score by prepending (first assignment wins the name;
		// the fixture's assignment overwrites, so substitute instead).
		prog := "testScore = " + string(rune('0'+tc.score/10)) + string(rune('0'+tc.score%10)) + "\n" + src[chopFirstLine(src):]
		res, err := RunSource(prog, RunOpts{Seed: 1})
		if err != nil {
			t.Fatalf("score %d: %v", tc.score, err)
		}
		if res.Output != tc.want {
			t.Fatalf("score %d: output %q, want %q", tc.score, res.Output, tc.want)
		}
	}
}

// chopFirstLine returns the index just past the first non-comment,
// non-empty line (the testScore assignment).
func chopFirstLine(src string) int {
	i := 0
	for i < len(src) {
		// find line end
		j := i
		for j < len(src) && src[j] != '\n' {
			j++
		}
		line := src[i:j]
		if len(line) > 0 && line[0] != '#' {
			return j + 1
		}
		i = j + 1
	}
	return len(src)
}

// --- Figure 3 ---

func TestFig3aParaTwoOutputs(t *testing.T) {
	res := exploreFixture(t, "fig3a_para.pc", Semantics{})
	want := []string{"hello world ", "world hello "}
	if !reflect.DeepEqual(res.Outputs, want) {
		t.Fatalf("outputs = %q, want %q", res.Outputs, want)
	}
	if res.HasDeadlock() {
		t.Fatal("no deadlock expected")
	}
}

func TestFig3bFunctionSequential(t *testing.T) {
	res := exploreFixture(t, "fig3b_func.pc", Semantics{})
	want := []string{"hi there "}
	if !reflect.DeepEqual(res.Outputs, want) {
		t.Fatalf("outputs = %q, want %q", res.Outputs, want)
	}
}

func TestFig3cThreeInterleavings(t *testing.T) {
	res := exploreFixture(t, "fig3c_interleave.pc", Semantics{})
	want := []string{"hi there world ", "hi world there ", "world hi there "}
	if !reflect.DeepEqual(res.Outputs, want) {
		t.Fatalf("outputs = %q, want %q (the paper's 3 possibilities)", res.Outputs, want)
	}
}

func TestFig3dTwoFunctionsInterleave(t *testing.T) {
	res := exploreFixture(t, "fig3d_twofuncs.pc", Semantics{})
	// Two 2-statement sequences interleave in C(4,2) = 6 ways; each
	// function's own statements stay ordered.
	if len(res.Outputs) != 6 {
		t.Fatalf("got %d outputs, want 6: %q", len(res.Outputs), res.Outputs)
	}
	mustContain := []string{
		"hi there go team ",
		"go team hi there ",
		"hi go there team ",
		"go hi team there ",
		"hi go team there ",
		"go hi there team ",
	}
	set := res.OutputSet()
	for _, m := range mustContain {
		if !set[m] {
			t.Fatalf("missing interleaving %q in %q", m, res.Outputs)
		}
	}
}

// --- Figure 4 ---

func TestFig4aExclusiveAccess(t *testing.T) {
	res := exploreFixture(t, "fig4a_excacc.pc", Semantics{})
	want := []string{"9\n"}
	if !reflect.DeepEqual(res.Outputs, want) {
		t.Fatalf("outputs = %q, want %q (EXC_ACC forces 10+1-2)", res.Outputs, want)
	}
	if res.HasDeadlock() {
		t.Fatal("no deadlock expected")
	}
}

func TestFig4aWithoutExclusionRaces(t *testing.T) {
	// Control: the same program WITHOUT exclusive access exhibits the lost
	// update race: read-compute-write is split into two statements.
	src := `x = 10
DEFINE changeX(diff)
    tmp = x + diff
    x = tmp
ENDDEF
PARA
    changeX(1)
    changeX(-2)
ENDPARA
PRINTLN x`
	res, err := ExploreSource(src, ExploreOpts{})
	if err != nil {
		t.Fatal(err)
	}
	set := res.OutputSet()
	// 9 (serialized), 11 (the -2 update lost), 8 (the +1 update lost).
	for _, o := range []string{"9\n", "11\n", "8\n"} {
		if !set[o] {
			t.Fatalf("lost-update race should allow %q; got %q", o, res.Outputs)
		}
	}
}

func TestFig4bWaitNotify(t *testing.T) {
	res := exploreFixture(t, "fig4b_waitnotify.pc", Semantics{})
	want := []string{"0\n"}
	if !reflect.DeepEqual(res.Outputs, want) {
		t.Fatalf("outputs = %q, want %q", res.Outputs, want)
	}
	if res.HasDeadlock() {
		t.Fatalf("no deadlock expected; %d found", res.Deadlocks)
	}
}

func TestFig4bConcreteRunsBothOrders(t *testing.T) {
	src := loadFixture(t, "fig4b_waitnotify.pc")
	for seed := int64(0); seed < 30; seed++ {
		res, err := RunSource(src, RunOpts{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Output != "0\n" {
			t.Fatalf("seed %d: output = %q", seed, res.Output)
		}
		if res.Kind != Completed {
			t.Fatalf("seed %d: kind = %v (%v)", seed, res.Kind, res.Blocked)
		}
	}
}

// --- Figure 5 ---

func TestFig5MessageOrders(t *testing.T) {
	res := exploreFixture(t, "fig5_messages.pc", Semantics{})
	want := []string{"hello world\n", "world\nhello "}
	if !reflect.DeepEqual(res.Outputs, want) {
		t.Fatalf("outputs = %q, want %q (the paper's two possibilities)", res.Outputs, want)
	}
	if res.HasDeadlock() {
		t.Fatal("no deadlock expected")
	}
}

func TestFig5FIFODeliveryOnlyOneOrder(t *testing.T) {
	// Under the [I2]M5 misconception semantics (messages received in send
	// order) only the first possibility survives — this is exactly what a
	// student holding that misconception predicts.
	res := exploreFixture(t, "fig5_messages.pc", Semantics{FIFOMailboxes: true})
	want := []string{"hello world\n"}
	if !reflect.DeepEqual(res.Outputs, want) {
		t.Fatalf("outputs = %q, want %q", res.Outputs, want)
	}
}

func TestFig5QuiescentNotDeadlock(t *testing.T) {
	res := exploreFixture(t, "fig5_messages.pc", Semantics{})
	for _, term := range res.Terminals {
		if term.Kind == Deadlocked {
			t.Fatalf("receiver quiescence misclassified as deadlock: %+v", term)
		}
		if term.Kind != Quiescent {
			t.Fatalf("kind = %v, want Quiescent (receiver loop persists)", term.Kind)
		}
	}
}
