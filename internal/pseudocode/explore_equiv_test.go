package pseudocode

import (
	"os"
	"reflect"
	"testing"
	"time"
)

// The optimized explorer configurations (POR, parallel workers, and their
// combination) must be observationally identical to the reference search:
// same distinct states, same terminal outputs, same deadlocks, same
// predicate hits. This sweep runs every corpus program under every
// semantics variant and compares all configurations against the plain
// sequential explorer, with fingerprint auditing on everywhere so any
// 128-bit collision in the run would also fail the test.

// equivPredicates are state-dependent observables (never path metadata like
// step counts — those differ by arrival order even between equivalent
// explorations).
func equivPredicates() []func(w *World) bool {
	return []func(w *World) bool{
		func(w *World) bool { return w.MailboxCount() > 0 },
		func(w *World) bool {
			for _, tk := range w.Tasks {
				if tk.Waiting() {
					return true
				}
			}
			return false
		},
	}
}

func equivSummary(r *ExploreResult) map[string]any {
	return map[string]any{
		"outputs":         r.Outputs,
		"deadlockOutputs": r.DeadlockOutputs,
		"deadlocks":       r.Deadlocks,
		"states":          r.StatesVisited,
		"predicateHits":   r.PredicateHits,
		"truncated":       r.Truncated,
	}
}

func TestExploreEquivalenceSweep(t *testing.T) {
	progs := CorpusPrograms()
	for _, name := range CorpusNames() {
		src := progs[name]
		for semName, sem := range allSemantics() {
			// bridge_message is ~100k states under bag delivery; sweep its
			// cheap variants and leave the expensive ones to the default
			// semantics so the full matrix stays fast enough for -race CI.
			if name == "bridge_message" && semName != "true" && semName != "fifo" {
				continue
			}
			if testing.Short() && name == "bridge_message" && semName == "true" {
				continue
			}
			t.Run(name+"/"+semName, func(t *testing.T) {
				base := ExploreOpts{
					Sem:            sem,
					Predicates:     equivPredicates(),
					AuditEncodings: true,
				}
				ref, refErr := ExploreSource(src, base)
				if refErr == nil {
					if ref.Truncated {
						t.Fatalf("reference exploration truncated; sweep comparison is meaningless")
					}
					if ref.AuditCollisions != 0 {
						t.Fatalf("reference run had %d fingerprint collisions", ref.AuditCollisions)
					}
				}
				configs := []struct {
					label string
					mod   func(*ExploreOpts)
				}{
					{"por", func(o *ExploreOpts) { o.POR = true }},
					{"workers", func(o *ExploreOpts) { o.Workers = 4 }},
					{"por+workers", func(o *ExploreOpts) { o.POR = true; o.Workers = 4 }},
				}
				for _, cfg := range configs {
					opts := base
					opts.Predicates = equivPredicates()
					cfg.mod(&opts)
					got, err := ExploreSource(src, opts)
					if (err != nil) != (refErr != nil) {
						t.Fatalf("%s: error mismatch: ref=%v got=%v", cfg.label, refErr, err)
					}
					if refErr != nil {
						continue
					}
					if got.AuditCollisions != 0 {
						t.Errorf("%s: %d fingerprint collisions", cfg.label, got.AuditCollisions)
					}
					want, have := equivSummary(ref), equivSummary(got)
					if !reflect.DeepEqual(want, have) {
						t.Errorf("%s: result diverged from reference\nref: %+v\ngot: %+v", cfg.label, want, have)
					}
				}
			})
		}
	}
}

// POR must also commute with single-shot reachability (the study's primitive).
func TestPORPreservesReachability(t *testing.T) {
	src := CorpusPrograms()["philosophers_symmetric"]
	pred := func(w *World) bool { return w.Classify() == Deadlocked }
	ref, err := ExploreSource(src, ExploreOpts{Predicate: pred})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExploreSource(src, ExploreOpts{Predicate: pred, POR: true})
	if err != nil {
		t.Fatal(err)
	}
	if ref.PredicateHit != got.PredicateHit {
		t.Fatalf("POR changed reachability: ref=%v got=%v", ref.PredicateHit, got.PredicateHit)
	}
}

// A deadlock witness recorded under POR must replay on a fresh world: the
// reduction prunes redundant interleavings but every recorded parent link
// is still a concrete executable schedule.
func TestWitnessReplayUnderPOR(t *testing.T) {
	progs := CorpusPrograms()
	for _, name := range []string{"philosophers_symmetric", "bridge_shared"} {
		prog, err := CompileSource(progs[name])
		if err != nil {
			t.Fatal(err)
		}
		res, err := Explore(prog, ExploreOpts{TrackWitness: true, POR: true})
		if err != nil {
			t.Fatal(err)
		}
		if name == "philosophers_symmetric" {
			if res.Deadlocks == 0 || len(res.DeadlockWitness) == 0 {
				t.Fatalf("%s: expected a deadlock witness under POR, got %d deadlocks, witness len %d",
					name, res.Deadlocks, len(res.DeadlockWitness))
			}
			_, w, err := ReplayWitness(prog, Semantics{}, res.DeadlockWitness)
			if err != nil {
				t.Fatalf("%s: witness does not replay: %v", name, err)
			}
			if w.Classify() != Deadlocked {
				t.Fatalf("%s: replayed witness ends %v, want deadlocked", name, w.Classify())
			}
		} else if res.Deadlocks != 0 {
			t.Fatalf("%s: unexpected deadlocks under POR", name)
		}
	}
}

// TestExploreBenchSmoke is the CI regression gate for explorer throughput:
// the optimized explorer must stay well above the committed seed baseline.
// The floor is 3x (the committed speedup is >10x) so the gate survives slow
// shared CI machines while still catching any return of per-state string
// retention or per-frame allocation. Gated behind EXPLORE_BENCH_SMOKE=1
// because absolute throughput is meaningless under -race.
func TestExploreBenchSmoke(t *testing.T) {
	if os.Getenv("EXPLORE_BENCH_SMOKE") == "" {
		t.Skip("set EXPLORE_BENCH_SMOKE=1 to run the explorer throughput gate")
	}
	// Seed baseline measured on the reference machine before the rewrite
	// (BENCH_explore.json keeps the full table).
	const seedStatesPerSec = 20794 // bridge_message, reference explorer
	src := CorpusPrograms()["bridge_message"]
	var best time.Duration
	var states int
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		res, err := ExploreSource(src, ExploreOpts{})
		el := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		if rep == 0 || el < best {
			best, states = el, res.StatesVisited
		}
	}
	got := float64(states) / best.Seconds()
	ratio := got / seedStatesPerSec
	t.Logf("bridge_message: %d states in %v = %.0f states/sec (%.1fx seed baseline)", states, best, got, ratio)
	if ratio < 3 {
		t.Fatalf("explorer at %.1fx the seed baseline (want >=3x)", ratio)
	}
}

// Fingerprinting correctness: deterministic, sensitive to every byte
// position (including the <16-byte tail path), and length-aware.
func TestFingerprintOf(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	a, b := fingerprintOf(data), fingerprintOf(data)
	if a != b {
		t.Fatal("fingerprint not deterministic")
	}
	seen := map[fingerprint]string{}
	// Every prefix must hash differently (exercises all tail lengths 0..15).
	for i := 0; i <= len(data); i++ {
		fp := fingerprintOf(data[:i])
		if prev, dup := seen[fp]; dup {
			t.Fatalf("prefix %q collides with %q", data[:i], prev)
		}
		seen[fp] = string(data[:i])
	}
	// Single-byte perturbations at every offset must change the hash.
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 1
		fp := fingerprintOf(mut)
		if prev, dup := seen[fp]; dup {
			t.Fatalf("mutation at %d collides with %q", i, prev)
		}
		seen[fp] = string(mut)
	}
	if fingerprintOf(nil) != fingerprintOf([]byte{}) {
		t.Fatal("nil and empty must hash identically")
	}
}

// The MaxStates bound must stop the whole frontier, not just one node's
// children: after the budget is hit, no further states are admitted.
func TestMaxStatesStopsFrontier(t *testing.T) {
	src := CorpusPrograms()["bridge_message"]
	for _, bound := range []int{10, 100, 1000} {
		res, err := ExploreSource(src, ExploreOpts{MaxStates: bound})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Truncated {
			t.Fatalf("bound %d: expected truncation", bound)
		}
		if res.StatesVisited > bound {
			t.Fatalf("bound %d: visited %d states past the bound", bound, res.StatesVisited)
		}
	}
}
