package pseudocode

import (
	"math"
	"testing"
)

// The dining philosophers in pseudocode: the course's first-lab deadlock,
// proven by the explorer rather than by a lucky schedule.

func TestPhilosophersSymmetricDeadlocks(t *testing.T) {
	src := loadFixture(t, "philosophers_symmetric.pc")
	res := mustExplore(t, src, Semantics{})
	if !res.HasDeadlock() {
		t.Fatal("symmetric acquisition must be able to deadlock (circular wait)")
	}
	// Successful executions still feed everyone.
	if !res.OutputSet()["3\n"] {
		t.Fatalf("non-deadlocked executions should print 3; outputs = %q", res.Outputs)
	}
	// In the classic all-hold-left deadlock every philosopher is stuck on
	// the inner acquire.
	foundFull := false
	for _, term := range res.Terminals {
		if term.Kind == Deadlocked && len(term.Blocked) == 4 { // 3 philosophers + joining main
			foundFull = true
		}
	}
	if !foundFull {
		t.Fatalf("expected the all-hold-left deadlock; terminals: %+v", res.Terminals)
	}
}

func TestPhilosophersAsymmetricNeverDeadlocks(t *testing.T) {
	src := loadFixture(t, "philosophers_asymmetric.pc")
	res := mustExplore(t, src, Semantics{})
	if res.HasDeadlock() {
		t.Fatalf("asymmetric (ordered) acquisition deadlocked in %d states", res.Deadlocks)
	}
	for _, o := range res.Outputs {
		if o != "3\n" {
			t.Fatalf("all executions must serve 3 meals: %q", res.Outputs)
		}
	}
}

func TestPhilosophersConcreteRunsHitBothOutcomes(t *testing.T) {
	// Under the random scheduler, some seeds deadlock and some complete —
	// the "works on my machine" phenomenon the course warns about.
	src := loadFixture(t, "philosophers_symmetric.pc")
	completed, deadlocked := 0, 0
	for seed := int64(0); seed < 200 && (completed == 0 || deadlocked == 0); seed++ {
		res, err := RunSource(src, RunOpts{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		switch res.Kind {
		case Completed:
			completed++
		case Deadlocked:
			deadlocked++
		}
	}
	if completed == 0 || deadlocked == 0 {
		t.Fatalf("expected both outcomes across seeds: completed=%d deadlocked=%d", completed, deadlocked)
	}
}

// TestSchedulerFairness: under the uniform random scheduler, long-running
// equal tasks receive statistically similar step counts — the fairness
// property the course discusses.
func TestSchedulerFairness(t *testing.T) {
	src := `x = 0
DEFINE spin()
    i = 0
    WHILE i < 200
        i = i + 1
    ENDWHILE
ENDDEF
PARA
    spin()
    spin()
    spin()
ENDPARA`
	res, err := RunSource(src, RunOpts{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var counts []float64
	for name, n := range res.TaskSteps {
		if name == "main" {
			continue
		}
		counts = append(counts, float64(n))
	}
	if len(counts) != 3 {
		t.Fatalf("task steps = %v", res.TaskSteps)
	}
	// Equal workloads must finish with equal step totals (each runs to
	// completion), so the check is that nobody was starved mid-run: all
	// three totals are equal and positive.
	for _, c := range counts {
		if c <= 0 || math.Abs(c-counts[0]) > 0.5 {
			t.Fatalf("unequal step totals: %v", res.TaskSteps)
		}
	}
	if res.TaskSteps["main"] <= 0 {
		t.Fatal("main never stepped")
	}
}
