package pseudocode

import (
	"fmt"
	"strings"
)

// TraceDiagram renders a concrete run's step events as a Mermaid sequence
// diagram: task lifelines, send→receive arrows (paired FIFO by message
// display text), and notes for synchronization events. Use with
// RunOpts.Trace or ReplayWitness to visualize an interleaving — including
// a deadlock counterexample.
func TraceDiagram(events []StepEvent) string {
	var b strings.Builder
	b.WriteString("sequenceDiagram\n")
	seen := map[string]bool{}
	var order []string
	for _, e := range events {
		if !seen[e.TaskName] {
			seen[e.TaskName] = true
			order = append(order, e.TaskName)
		}
	}
	for _, p := range order {
		fmt.Fprintf(&b, "    participant %s\n", diagramID(p))
	}
	// Pair sends to receives by the message's display text.
	pending := map[string][]int{} // display -> send event indexes
	recvOf := map[int]string{}    // send index -> receiving task
	for i, e := range events {
		switch e.Op {
		case "send":
			pending[e.Detail] = append(pending[e.Detail], i)
		case "receive":
			if q := pending[e.Detail]; len(q) > 0 {
				recvOf[q[0]] = e.TaskName
				pending[e.Detail] = q[1:]
			}
		}
	}
	for i, e := range events {
		switch e.Op {
		case "send":
			if to, ok := recvOf[i]; ok {
				fmt.Fprintf(&b, "    %s->>%s: %s\n", diagramID(e.TaskName), diagramID(to), e.Detail)
			} else {
				fmt.Fprintf(&b, "    %s--x%s: %s (pending)\n", diagramID(e.TaskName), diagramID(e.TaskName), e.Detail)
			}
		case "acquire", "release", "wait", "wake", "notify", "block-acquire":
			fmt.Fprintf(&b, "    Note over %s: %s %s\n", diagramID(e.TaskName), e.Op, e.Detail)
		case "print":
			fmt.Fprintf(&b, "    Note over %s: PRINT %q\n", diagramID(e.TaskName), e.Detail)
		}
	}
	return b.String()
}

func diagramID(name string) string {
	r := strings.NewReplacer(" ", "_", "(", "_", ")", "_", "#", "_", ".", "_", "@", "_", "/", "_", "-", "_")
	out := r.Replace(name)
	if out == "" {
		return "anon"
	}
	return out
}
