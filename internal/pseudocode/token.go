// Package pseudocode implements the paper's language-independent concurrency
// pseudocode (Figures 1-5): a lexer, parser, compiler and virtual machine
// for programs using PARA/ENDPARA concurrent blocks, EXC_ACC/END_EXC_ACC
// exclusive-access blocks with WAIT()/NOTIFY(), and asynchronous message
// passing (MESSAGE.name(...), Send(m).To(r), ON_RECEIVING).
//
// Two execution engines are provided: a concrete interpreter with a seeded
// random scheduler (Run), and an exhaustive explorer (Explore) that
// enumerates the full space of executions at atomic-statement granularity —
// the "space of executions" the paper's Test-1 questions reason about.
package pseudocode

import "fmt"

// TokKind identifies a lexical token class.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokFloat
	TokString
	TokKeyword // uppercase reserved words and reserved identifiers
	TokOp      // operators and punctuation
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokInt:
		return "int"
	case TokFloat:
		return "float"
	case TokString:
		return "string"
	case TokKeyword:
		return "keyword"
	case TokOp:
		return "operator"
	default:
		return fmt.Sprintf("TokKind(%d)", int(k))
	}
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

// keywords are the reserved words of the pseudocode notation. Send/To/new/
// self are contextual but reserving them keeps the grammar unambiguous.
var keywords = map[string]bool{
	"IF": true, "THEN": true, "ELSE": true, "ENDIF": true,
	"WHILE": true, "ENDWHILE": true,
	"DEFINE": true, "ENDDEF": true,
	"PARA": true, "ENDPARA": true,
	"EXC_ACC": true, "END_EXC_ACC": true,
	"WAIT": true, "NOTIFY": true,
	"CLASS": true, "ENDCLASS": true,
	"MESSAGE": true, "ON_RECEIVING": true, "END_ON_RECEIVING": true,
	"PRINT": true, "PRINTLN": true,
	"RETURN": true,
	"AND":    true, "OR": true, "NOT": true,
	"True": true, "False": true, "Null": true,
	"Send": true, "To": true, "new": true, "self": true,
}

// SyntaxError reports a lexing or parsing failure with position info.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("pseudocode: line %d:%d: %s", e.Line, e.Col, e.Msg)
}
