package pseudocode_test

import (
	"fmt"

	"repro/internal/pseudocode"
)

// ExampleRunSource executes a pseudocode program once under a seeded
// scheduler.
func ExampleRunSource() {
	res, err := pseudocode.RunSource(`
x = 1
x = x + 41
PRINTLN x
`, pseudocode.RunOpts{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Print(res.Output)
	// Output: 42
}

// ExampleExploreSource enumerates the complete execution space of a PARA
// block — the paper's Figure 3.
func ExampleExploreSource() {
	res, err := pseudocode.ExploreSource(`
PARA
    PRINT "hello "
    PRINT "world "
ENDPARA
`, pseudocode.ExploreOpts{})
	if err != nil {
		panic(err)
	}
	for i, o := range res.Outputs {
		fmt.Printf("possibility %d: %q\n", i+1, o)
	}
	// Output:
	// possibility 1: "hello world "
	// possibility 2: "world hello "
}

// ExampleReachable asks a Test-1 style "could this happen?" question.
func ExampleReachable() {
	src := `
x = 0
PARA
    x = x + 1
    x = x + 10
ENDPARA
`
	hit, err := pseudocode.Reachable(src, pseudocode.Semantics{}, func(w *pseudocode.World) bool {
		v, ok := w.GetGlobal("x").(pseudocode.IntV)
		return ok && v == 10
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(hit)
	// Output: true
}

// ExampleFormatSource normalizes pseudocode layout.
func ExampleFormatSource() {
	out, err := pseudocode.FormatSource(`IF x>0 THEN PRINTLN "pos" ELSE PRINTLN "neg" ENDIF`)
	if err != nil {
		panic(err)
	}
	fmt.Print(out)
	// Output:
	// IF x > 0 THEN
	//     PRINTLN "pos"
	// ELSE
	//     PRINTLN "neg"
	// ENDIF
}
