package pseudocode

import (
	"encoding/binary"
	"math/bits"
)

// fingerprint is a 128-bit state hash. The explorer keys its visited set on
// fingerprints instead of retaining every canonical encoding string: at the
// scale of millions of states, a random collision among 2^128 values is
// vanishingly unlikely (~n²/2^129), and the opt-in
// ExploreOpts.AuditEncodings mode keeps the full strings to verify that no
// collision occurred in a given run.
type fingerprint struct {
	hi, lo uint64
}

// MurmurHash3 x64 128-bit constants.
const (
	mmh3C1 = 0x87c37b91114253d5
	mmh3C2 = 0x4cf5ad432745937f
)

func mmh3Fmix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// fingerprintOf hashes data with MurmurHash3's x64 128-bit variant
// (seed 0). Chosen over a byte-at-a-time FNV because it processes 16 bytes
// per round — state encodings are hashed once per explored transition, so
// the hash sits directly on the hot path.
func fingerprintOf(data []byte) fingerprint {
	var h1, h2 uint64
	n := len(data)
	p := data
	for len(p) >= 16 {
		k1 := binary.LittleEndian.Uint64(p)
		k2 := binary.LittleEndian.Uint64(p[8:])
		p = p[16:]

		k1 *= mmh3C1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= mmh3C2
		h1 ^= k1
		h1 = bits.RotateLeft64(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729

		k2 *= mmh3C2
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= mmh3C1
		h2 ^= k2
		h2 = bits.RotateLeft64(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}

	var k1, k2 uint64
	switch len(p) & 15 {
	case 15:
		k2 ^= uint64(p[14]) << 48
		fallthrough
	case 14:
		k2 ^= uint64(p[13]) << 40
		fallthrough
	case 13:
		k2 ^= uint64(p[12]) << 32
		fallthrough
	case 12:
		k2 ^= uint64(p[11]) << 24
		fallthrough
	case 11:
		k2 ^= uint64(p[10]) << 16
		fallthrough
	case 10:
		k2 ^= uint64(p[9]) << 8
		fallthrough
	case 9:
		k2 ^= uint64(p[8])
		k2 *= mmh3C2
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= mmh3C1
		h2 ^= k2
		fallthrough
	case 8:
		k1 ^= uint64(p[7]) << 56
		fallthrough
	case 7:
		k1 ^= uint64(p[6]) << 48
		fallthrough
	case 6:
		k1 ^= uint64(p[5]) << 40
		fallthrough
	case 5:
		k1 ^= uint64(p[4]) << 32
		fallthrough
	case 4:
		k1 ^= uint64(p[3]) << 24
		fallthrough
	case 3:
		k1 ^= uint64(p[2]) << 16
		fallthrough
	case 2:
		k1 ^= uint64(p[1]) << 8
		fallthrough
	case 1:
		k1 ^= uint64(p[0])
		k1 *= mmh3C1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= mmh3C2
		h1 ^= k1
	}

	h1 ^= uint64(n)
	h2 ^= uint64(n)
	h1 += h2
	h2 += h1
	h1 = mmh3Fmix64(h1)
	h2 = mmh3Fmix64(h2)
	h1 += h2
	h2 += h1
	return fingerprint{hi: h1, lo: h2}
}
