package pseudocode

import (
	"fmt"
	"strconv"
	"strings"
)

// Format renders a parsed program back to canonical pseudocode text:
// four-space indentation, one statement per line, keywords as in the
// paper's figures. Format(Parse(src)) is a normalizer; it is idempotent.
func Format(p *Program) string {
	var pr printer
	for _, s := range p.Stmts {
		pr.stmt(s)
	}
	return pr.b.String()
}

// FormatSource parses and formats src.
func FormatSource(src string) (string, error) {
	p, err := Parse(src)
	if err != nil {
		return "", err
	}
	return Format(p), nil
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) line(format string, args ...any) {
	p.b.WriteString(strings.Repeat("    ", p.indent))
	fmt.Fprintf(&p.b, format, args...)
	p.b.WriteByte('\n')
}

func (p *printer) block(body []Stmt) {
	p.indent++
	for _, s := range body {
		p.stmt(s)
	}
	p.indent--
}

func (p *printer) stmt(s Stmt) {
	switch st := s.(type) {
	case *AssignStmt:
		p.line("%s = %s", expr(st.Target), expr(st.Value))
	case *PrintStmt:
		kw := "PRINT"
		if st.Newline {
			kw = "PRINTLN"
		}
		p.line("%s %s", kw, expr(st.Value))
	case *IfStmt:
		p.ifChain(st, false)
		p.line("ENDIF")
	case *WhileStmt:
		p.line("WHILE %s", expr(st.Cond))
		p.block(st.Body)
		p.line("ENDWHILE")
	case *DefineStmt:
		p.define(st)
	case *ClassStmt:
		p.line("CLASS %s", st.Name)
		p.indent++
		for _, m := range st.Methods {
			p.define(m)
		}
		p.indent--
		p.line("ENDCLASS")
	case *ParaStmt:
		p.line("PARA")
		p.block(st.Tasks)
		p.line("ENDPARA")
	case *ExcAccStmt:
		p.line("EXC_ACC")
		p.block(st.Body)
		p.line("END_EXC_ACC")
	case *WaitStmt:
		p.line("WAIT()")
	case *NotifyStmt:
		p.line("NOTIFY()")
	case *SendStmt:
		p.line("Send(%s).To(%s)", expr(st.Msg), expr(st.Target))
	case *ReceiveStmt:
		p.line("ON_RECEIVING")
		p.indent++
		for _, cl := range st.Clauses {
			p.line("MESSAGE.%s(%s)", cl.MsgName, strings.Join(cl.Params, ", "))
			p.block(cl.Body)
		}
		p.indent--
		p.line("END_ON_RECEIVING")
	case *ReturnStmt:
		if st.Value != nil {
			p.line("RETURN %s", expr(st.Value))
		} else {
			p.line("RETURN")
		}
	case *ExprStmt:
		p.line("%s", expr(st.E))
	default:
		p.line("# <unprintable %T>", s)
	}
}

// ifChain prints IF/ELSE IF chains flat, reversing the parser's nesting.
func (p *printer) ifChain(st *IfStmt, isElseIf bool) {
	kw := "IF"
	if isElseIf {
		kw = "ELSE IF"
	}
	p.line("%s %s THEN", kw, expr(st.Cond))
	p.block(st.Then)
	if len(st.Else) == 1 {
		if nested, ok := st.Else[0].(*IfStmt); ok {
			p.ifChain(nested, true)
			return
		}
	}
	if len(st.Else) > 0 {
		p.line("ELSE")
		p.block(st.Else)
	}
}

func (p *printer) define(st *DefineStmt) {
	p.line("DEFINE %s(%s)", st.Name, strings.Join(st.Params, ", "))
	p.block(st.Body)
	p.line("ENDDEF")
}

// precedence levels, matching the parser.
func prec(e Expr) int {
	switch x := e.(type) {
	case *BinaryExpr:
		switch x.Op {
		case "OR":
			return 1
		case "AND":
			return 2
		case "<", "<=", ">", ">=", "==", "!=":
			return 4
		case "+", "-":
			return 5
		case "*", "/", "%":
			return 6
		}
	case *UnaryExpr:
		if x.Op == "NOT" {
			return 3
		}
		return 7
	}
	return 8
}

// quoteString emits a string literal using exactly the escape set the lexer
// decodes (\n, \t, \", \\), writing every other byte raw. strconv.Quote is
// wrong here: it produces Go escapes like \x89 that the lexer would read as
// a literal 'x', corrupting the value on a Format → Parse round trip.
func quoteString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

func expr(e Expr) string {
	switch x := e.(type) {
	case *IntLit:
		return strconv.FormatInt(x.Value, 10)
	case *FloatLit:
		s := strconv.FormatFloat(x.Value, 'g', -1, 64)
		if strings.ContainsAny(s, "eE") {
			// The grammar has no exponent form; spell the digits out.
			s = strconv.FormatFloat(x.Value, 'f', -1, 64)
		}
		if !strings.Contains(s, ".") {
			s += ".0" // keep float literals lexically floats
		}
		return s
	case *StrLit:
		return quoteString(x.Value)
	case *BoolLit:
		if x.Value {
			return "True"
		}
		return "False"
	case *NullLit:
		return "Null"
	case *Ident:
		return x.Name
	case *SelfExpr:
		return "self"
	case *FieldExpr:
		return childExpr(x.Obj, 8) + "." + x.Name
	case *BinaryExpr:
		p := prec(x)
		// Left-associative: the right child needs parens at equal precedence.
		return childExpr(x.Lhs, p) + " " + x.Op + " " + childExpr(x.Rhs, p+1)
	case *UnaryExpr:
		if x.Op == "NOT" {
			return "NOT " + childExpr(x.Rhs, 3)
		}
		return "-" + childExpr(x.Rhs, 7)
	case *CallExpr:
		return x.Name + "(" + args(x.Args) + ")"
	case *MethodCallExpr:
		return childExpr(x.Obj, 8) + "." + x.Name + "(" + args(x.Args) + ")"
	case *MessageExpr:
		return "MESSAGE." + x.Name + "(" + args(x.Args) + ")"
	case *NewExpr:
		return "new " + x.Class + "(" + args(x.Args) + ")"
	default:
		return fmt.Sprintf("<unprintable %T>", e)
	}
}

// childExpr parenthesizes child when its precedence is below min.
func childExpr(e Expr, min int) string {
	s := expr(e)
	if prec(e) < min {
		return "(" + s + ")"
	}
	return s
}

func args(xs []Expr) string {
	parts := make([]string, len(xs))
	for i, a := range xs {
		parts[i] = expr(a)
	}
	return strings.Join(parts, ", ")
}
