package pseudocode

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`x = 10 + 2.5 # comment
PRINT "hi there" // also comment
IF x >= 3 THEN`)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.Kind != TokEOF {
			texts = append(texts, tk.Text)
		}
	}
	want := []string{"x", "=", "10", "+", "2.5", "PRINT", "hi there", "IF", "x", ">=", "3", "THEN"}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := Lex(`"a\nb\t\"c\\"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "a\nb\t\"c\\" {
		t.Fatalf("escaped string = %q", toks[0].Text)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, "\"newline\nin string\"", "x = @"} {
		if _, err := Lex(src); err == nil {
			t.Fatalf("Lex(%q) should fail", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Fatalf("a at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Fatalf("b at %d:%d", toks[1].Line, toks[1].Col)
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, _ := Lex("PARA para EXC_ACC exc")
	wantKinds := []TokKind{TokKeyword, TokIdent, TokKeyword, TokIdent}
	for i, k := range wantKinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d (%s) kind = %v, want %v", i, toks[i].Text, toks[i].Kind, k)
		}
	}
}

func TestParseAssignAndPrint(t *testing.T) {
	p := MustParse(`x = 1 + 2 * 3
PRINTLN x`)
	if len(p.Stmts) != 2 {
		t.Fatalf("stmts = %d", len(p.Stmts))
	}
	as, ok := p.Stmts[0].(*AssignStmt)
	if !ok {
		t.Fatalf("stmt 0 = %T", p.Stmts[0])
	}
	// Precedence: 1 + (2*3)
	bin := as.Value.(*BinaryExpr)
	if bin.Op != "+" {
		t.Fatalf("top op = %s", bin.Op)
	}
	if inner, ok := bin.Rhs.(*BinaryExpr); !ok || inner.Op != "*" {
		t.Fatalf("rhs = %#v", bin.Rhs)
	}
}

func TestParseIfElseChain(t *testing.T) {
	p := MustParse(`IF a >= 90 THEN
PRINTLN "A"
ELSE IF a >= 80 THEN
PRINTLN "B"
ELSE
PRINTLN "F"
ENDIF`)
	ifs := p.Stmts[0].(*IfStmt)
	if len(ifs.Then) != 1 || len(ifs.Else) != 1 {
		t.Fatalf("if = %+v", ifs)
	}
	nested, ok := ifs.Else[0].(*IfStmt)
	if !ok || len(nested.Else) != 1 {
		t.Fatalf("else-if chain = %#v", ifs.Else[0])
	}
}

func TestParseWhileWaitNotify(t *testing.T) {
	p := MustParse(`DEFINE f(d)
EXC_ACC
WHILE x + d < 0
WAIT()
ENDWHILE
x = x + d
NOTIFY()
END_EXC_ACC
ENDDEF`)
	def := p.Stmts[0].(*DefineStmt)
	if def.Name != "f" || len(def.Params) != 1 || def.Params[0] != "d" {
		t.Fatalf("def = %+v", def)
	}
	exc := def.Body[0].(*ExcAccStmt)
	wh := exc.Body[0].(*WhileStmt)
	if _, ok := wh.Body[0].(*WaitStmt); !ok {
		t.Fatalf("while body = %#v", wh.Body[0])
	}
	if _, ok := exc.Body[2].(*NotifyStmt); !ok {
		t.Fatalf("exc body = %#v", exc.Body)
	}
}

func TestParsePara(t *testing.T) {
	p := MustParse(`PARA
f()
g(1, 2)
ENDPARA`)
	para := p.Stmts[0].(*ParaStmt)
	if len(para.Tasks) != 2 {
		t.Fatalf("tasks = %d", len(para.Tasks))
	}
}

func TestParseClassAndReceive(t *testing.T) {
	p := MustParse(`CLASS Receiver
DEFINE receive
ON_RECEIVING
MESSAGE.h(v)
PRINT v
MESSAGE.w(v)
PRINTLN v
ENDDEF
ENDCLASS`)
	cls := p.Stmts[0].(*ClassStmt)
	if cls.Name != "Receiver" || len(cls.Methods) != 1 {
		t.Fatalf("class = %+v", cls)
	}
	recv := cls.Methods[0].Body[0].(*ReceiveStmt)
	if len(recv.Clauses) != 2 || recv.Clauses[0].MsgName != "h" || recv.Clauses[1].MsgName != "w" {
		t.Fatalf("clauses = %+v", recv.Clauses)
	}
}

func TestParseSendAndMessage(t *testing.T) {
	p := MustParse(`m1 = MESSAGE.h("hello")
Send(m1).To(r1)`)
	as := p.Stmts[0].(*AssignStmt)
	msg := as.Value.(*MessageExpr)
	if msg.Name != "h" || len(msg.Args) != 1 {
		t.Fatalf("msg = %+v", msg)
	}
	snd := p.Stmts[1].(*SendStmt)
	if _, ok := snd.Target.(*Ident); !ok {
		t.Fatalf("send target = %#v", snd.Target)
	}
}

func TestParseNewAndMethodCall(t *testing.T) {
	p := MustParse(`r = new Receiver()
r.receive()
v = r.count`)
	if _, ok := p.Stmts[0].(*AssignStmt).Value.(*NewExpr); !ok {
		t.Fatal("expected NewExpr")
	}
	es := p.Stmts[1].(*ExprStmt)
	if _, ok := es.E.(*MethodCallExpr); !ok {
		t.Fatal("expected MethodCallExpr")
	}
	if _, ok := p.Stmts[2].(*AssignStmt).Value.(*FieldExpr); !ok {
		t.Fatal("expected FieldExpr")
	}
}

func TestParseSelfField(t *testing.T) {
	p := MustParse(`CLASS C
DEFINE m()
self.x = self.x + 1
RETURN self.x
ENDDEF
ENDCLASS`)
	m := p.Stmts[0].(*ClassStmt).Methods[0]
	as := m.Body[0].(*AssignStmt)
	fe := as.Target.(*FieldExpr)
	if _, ok := fe.Obj.(*SelfExpr); !ok || fe.Name != "x" {
		t.Fatalf("target = %#v", as.Target)
	}
	rt := m.Body[1].(*ReturnStmt)
	if rt.Value == nil {
		t.Fatal("return value missing")
	}
}

func TestParseBareReturn(t *testing.T) {
	p := MustParse(`DEFINE f()
RETURN
ENDDEF`)
	rt := p.Stmts[0].(*DefineStmt).Body[0].(*ReturnStmt)
	if rt.Value != nil {
		t.Fatalf("bare return has value %#v", rt.Value)
	}
}

func TestParseUnaryAndLogic(t *testing.T) {
	p := MustParse(`b = NOT (x > 0 AND y < 0) OR z == -1`)
	as := p.Stmts[0].(*AssignStmt)
	top := as.Value.(*BinaryExpr)
	if top.Op != "OR" {
		t.Fatalf("top = %s", top.Op)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"IF x THEN",                     // missing ENDIF
		"PARA",                          // missing ENDPARA
		"x + 1",                         // expression statement not a call
		"1 = 2",                         // invalid target
		"DEFINE 3() ENDDEF",             // bad name
		"Send(m).At(r)",                 // wrong Send syntax
		"CLASS C x = 1 ENDCLASS",        // non-DEFINE in class
		"ON_RECEIVING END_ON_RECEIVING", // no clauses
		"f(1,",                          // bad args
		"ELSE",                          // stray keyword
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Fatalf("Parse(%q) should fail", src)
		}
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse("IF x THEN\nPRINT 1")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "pseudocode: line") {
		t.Fatalf("error = %q", err)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"WAIT() outside":      "EXC_ACC\nEND_EXC_ACC\nWAIT()",
		"NOTIFY outside":      "NOTIFY()",
		"undefined function":  "f()",
		"unknown class":       "x = new Nope()",
		"constructor args":    "CLASS C DEFINE m() ENDDEF ENDCLASS\nx = new C(1)",
		"duplicate function":  "DEFINE f() ENDDEF\nDEFINE f() ENDDEF",
		"self outside method": "DEFINE f() x = self ENDDEF",
	}
	for name, src := range cases {
		if _, err := CompileSource(src); err == nil {
			t.Fatalf("%s: CompileSource(%q) should fail", name, src)
		}
	}
}

func TestCompileFootprint(t *testing.T) {
	c, err := CompileSource(`x = 0
y = 0
DEFINE f(d)
EXC_ACC
x = x + d
y = y - d
END_EXC_ACC
ENDDEF
f(1)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Footprints) != 1 {
		t.Fatalf("footprints = %v", c.Footprints)
	}
	fp := c.Footprints[0]
	if len(fp) != 2 || fp[0] != "x" || fp[1] != "y" {
		t.Fatalf("footprint = %v (param d must be excluded)", fp)
	}
	fn := c.Funcs["f"]
	if len(fn.ExcVars) != 2 {
		t.Fatalf("ExcVars = %v", fn.ExcVars)
	}
}

func TestCompileReceiverFlag(t *testing.T) {
	c, err := CompileSource(`CLASS R
DEFINE receive
ON_RECEIVING
MESSAGE.m(v)
PRINT v
ENDDEF
DEFINE plain()
RETURN 1
ENDDEF
ENDCLASS`)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Classes["R"]["receive"].IsReceiver {
		t.Fatal("receive should be flagged IsReceiver")
	}
	if c.Classes["R"]["plain"].IsReceiver {
		t.Fatal("plain should not be IsReceiver")
	}
}

func TestOpString(t *testing.T) {
	if OpStep.String() != "STEP" || OpReceive.String() != "RECEIVE" {
		t.Fatal("op names broken")
	}
	if Op(99).String() != "Op(99)" {
		t.Fatalf("unknown op = %q", Op(99).String())
	}
}
