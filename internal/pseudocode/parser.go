package pseudocode

import "fmt"

// Parse lexes and parses src into a Program.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(TokEOF, "") {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, s)
	}
	return prog, nil
}

// MustParse parses src and panics on error; for tests and fixtures.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) at(kind TokKind, text string) bool {
	t := p.peek()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) atKw(words ...string) bool {
	t := p.peek()
	if t.Kind != TokKeyword {
		return false
	}
	for _, w := range words {
		if t.Text == w {
			return true
		}
	}
	return false
}

func (p *parser) expect(kind TokKind, text string) (Token, error) {
	t := p.peek()
	if t.Kind != kind || (text != "" && t.Text != text) {
		want := text
		if want == "" {
			want = kind.String()
		}
		return t, &SyntaxError{t.Line, t.Col, fmt.Sprintf("expected %s, found %s", want, t)}
	}
	return p.next(), nil
}

func (p *parser) errf(t Token, format string, args ...any) error {
	return &SyntaxError{t.Line, t.Col, fmt.Sprintf(format, args...)}
}

// stmts parses statements until one of the given terminator keywords
// (which is not consumed).
func (p *parser) stmts(terminators ...string) ([]Stmt, error) {
	var out []Stmt
	for {
		if p.at(TokEOF, "") {
			t := p.peek()
			return nil, p.errf(t, "unexpected end of input, expected one of %v", terminators)
		}
		if p.atKw(terminators...) {
			return out, nil
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func (p *parser) stmt() (Stmt, error) {
	t := p.peek()
	if t.Kind == TokKeyword {
		switch t.Text {
		case "PRINT", "PRINTLN":
			p.next()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &PrintStmt{Value: e, Newline: t.Text == "PRINTLN", Line: t.Line}, nil
		case "IF":
			return p.ifStmt()
		case "WHILE":
			p.next()
			cond, err := p.expr()
			if err != nil {
				return nil, err
			}
			body, err := p.stmts("ENDWHILE")
			if err != nil {
				return nil, err
			}
			p.next() // ENDWHILE
			return &WhileStmt{Cond: cond, Body: body, Line: t.Line}, nil
		case "DEFINE":
			return p.defineStmt()
		case "PARA":
			p.next()
			tasks, err := p.stmts("ENDPARA")
			if err != nil {
				return nil, err
			}
			p.next()
			return &ParaStmt{Tasks: tasks, Line: t.Line}, nil
		case "EXC_ACC":
			p.next()
			body, err := p.stmts("END_EXC_ACC")
			if err != nil {
				return nil, err
			}
			p.next()
			return &ExcAccStmt{Body: body, Line: t.Line}, nil
		case "WAIT":
			p.next()
			if err := p.parens(); err != nil {
				return nil, err
			}
			return &WaitStmt{Line: t.Line}, nil
		case "NOTIFY":
			p.next()
			if err := p.parens(); err != nil {
				return nil, err
			}
			return &NotifyStmt{Line: t.Line}, nil
		case "CLASS":
			return p.classStmt()
		case "Send":
			return p.sendStmt()
		case "ON_RECEIVING":
			return p.receiveStmt()
		case "RETURN":
			p.next()
			// RETURN may be bare (end of function) — a value must start a
			// plausible expression token.
			if p.startsExpr() {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				return &ReturnStmt{Value: e, Line: t.Line}, nil
			}
			return &ReturnStmt{Line: t.Line}, nil
		case "self":
			// self.field = value, or self.method() statement.
			return p.exprOrAssign()
		default:
			return nil, p.errf(t, "unexpected keyword %s", t)
		}
	}
	if t.Kind == TokIdent {
		return p.exprOrAssign()
	}
	return nil, p.errf(t, "unexpected token %s at statement start", t)
}

// startsExpr reports whether the next token can begin an expression;
// used only to disambiguate bare RETURN.
func (p *parser) startsExpr() bool {
	t := p.peek()
	switch t.Kind {
	case TokInt, TokFloat, TokString, TokIdent:
		return true
	case TokOp:
		return t.Text == "(" || t.Text == "-"
	case TokKeyword:
		switch t.Text {
		case "True", "False", "Null", "NOT", "MESSAGE", "new", "self":
			return true
		}
	}
	return false
}

func (p *parser) parens() error {
	if _, err := p.expect(TokOp, "("); err != nil {
		return err
	}
	_, err := p.expect(TokOp, ")")
	return err
}

func (p *parser) ifStmt() (Stmt, error) {
	t := p.next() // IF
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "THEN"); err != nil {
		return nil, err
	}
	thenBody, err := p.stmts("ELSE", "ENDIF")
	if err != nil {
		return nil, err
	}
	var elseBody []Stmt
	if p.atKw("ELSE") {
		p.next()
		if p.atKw("IF") {
			nested, err := p.ifStmt() // consumes through its ENDIF
			if err != nil {
				return nil, err
			}
			return &IfStmt{Cond: cond, Then: thenBody, Else: []Stmt{nested}, Line: t.Line}, nil
		}
		elseBody, err = p.stmts("ENDIF")
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokKeyword, "ENDIF"); err != nil {
		return nil, err
	}
	return &IfStmt{Cond: cond, Then: thenBody, Else: elseBody, Line: t.Line}, nil
}

func (p *parser) defineStmt() (*DefineStmt, error) {
	t := p.next() // DEFINE
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	var params []string
	if p.at(TokOp, "(") { // parens optional: Fig. 5 writes "DEFINE receive"
		p.next()
		for !p.at(TokOp, ")") {
			pn, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			params = append(params, pn.Text)
			if p.at(TokOp, ",") {
				p.next()
			}
		}
		p.next() // )
	}
	body, err := p.stmts("ENDDEF")
	if err != nil {
		return nil, err
	}
	p.next() // ENDDEF
	return &DefineStmt{Name: name.Text, Params: params, Body: body, Line: t.Line}, nil
}

func (p *parser) classStmt() (Stmt, error) {
	t := p.next() // CLASS
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	var methods []*DefineStmt
	for !p.atKw("ENDCLASS") {
		if p.at(TokEOF, "") {
			return nil, p.errf(p.peek(), "unexpected end of input in CLASS %s", name.Text)
		}
		if !p.atKw("DEFINE") {
			return nil, p.errf(p.peek(), "only DEFINE allowed inside CLASS, found %s", p.peek())
		}
		m, err := p.defineStmt()
		if err != nil {
			return nil, err
		}
		methods = append(methods, m)
	}
	p.next() // ENDCLASS
	return &ClassStmt{Name: name.Text, Methods: methods, Line: t.Line}, nil
}

func (p *parser) sendStmt() (Stmt, error) {
	t := p.next() // Send
	if _, err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	msg, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, "."); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "To"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	target, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	return &SendStmt{Msg: msg, Target: target, Line: t.Line}, nil
}

func (p *parser) receiveStmt() (Stmt, error) {
	t := p.next() // ON_RECEIVING
	var clauses []RecvClause
	for {
		if p.atKw("ENDDEF") || p.atKw("END_ON_RECEIVING") {
			break
		}
		if p.at(TokEOF, "") {
			return nil, p.errf(p.peek(), "unexpected end of input in ON_RECEIVING")
		}
		if !p.atKw("MESSAGE") {
			return nil, p.errf(p.peek(), "expected MESSAGE clause in ON_RECEIVING, found %s", p.peek())
		}
		ct := p.next() // MESSAGE
		if _, err := p.expect(TokOp, "."); err != nil {
			return nil, err
		}
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, "("); err != nil {
			return nil, err
		}
		var params []string
		for !p.at(TokOp, ")") {
			pn, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			params = append(params, pn.Text)
			if p.at(TokOp, ",") {
				p.next()
			}
		}
		p.next() // )
		body, err := p.recvClauseBody()
		if err != nil {
			return nil, err
		}
		clauses = append(clauses, RecvClause{MsgName: name.Text, Params: params, Body: body, Line: ct.Line})
	}
	if p.atKw("END_ON_RECEIVING") {
		p.next()
	}
	if len(clauses) == 0 {
		return nil, p.errf(t, "ON_RECEIVING requires at least one MESSAGE clause")
	}
	return &ReceiveStmt{Clauses: clauses, Line: t.Line}, nil
}

// recvClauseBody parses statements until the next MESSAGE clause header,
// END_ON_RECEIVING, or ENDDEF. A MESSAGE token can also begin an expression
// (MESSAGE.x(...) as a value), but only inside assignments/sends, which
// start with an identifier or Send — so a bare MESSAGE token here is always
// a new clause.
func (p *parser) recvClauseBody() ([]Stmt, error) {
	var out []Stmt
	for {
		if p.atKw("MESSAGE") || p.atKw("END_ON_RECEIVING") || p.atKw("ENDDEF") {
			return out, nil
		}
		if p.at(TokEOF, "") {
			return nil, p.errf(p.peek(), "unexpected end of input in ON_RECEIVING clause")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

// exprOrAssign parses either an assignment (target = value) or a call
// statement.
func (p *parser) exprOrAssign() (Stmt, error) {
	t := p.peek()
	e, err := p.postfixExpr()
	if err != nil {
		return nil, err
	}
	if p.at(TokOp, "=") {
		p.next()
		switch e.(type) {
		case *Ident, *FieldExpr:
		default:
			return nil, p.errf(t, "invalid assignment target")
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Target: e, Value: val, Line: t.Line}, nil
	}
	switch e.(type) {
	case *CallExpr, *MethodCallExpr:
		return &ExprStmt{E: e, Line: t.Line}, nil
	}
	return nil, p.errf(t, "expression statement must be a call")
}

// --- Expressions (precedence climbing) ---

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	lhs, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.atKw("OR") {
		p.next()
		rhs, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: "OR", Lhs: lhs, Rhs: rhs}
	}
	return lhs, nil
}

func (p *parser) andExpr() (Expr, error) {
	lhs, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.atKw("AND") {
		p.next()
		rhs, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: "AND", Lhs: lhs, Rhs: rhs}
	}
	return lhs, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.atKw("NOT") {
		p.next()
		rhs, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", Rhs: rhs}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (Expr, error) {
	lhs, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokOp, "<") || p.at(TokOp, ">") || p.at(TokOp, "<=") ||
		p.at(TokOp, ">=") || p.at(TokOp, "==") || p.at(TokOp, "!=") {
		op := p.next().Text
		rhs, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: op, Lhs: lhs, Rhs: rhs}
	}
	return lhs, nil
}

func (p *parser) addExpr() (Expr, error) {
	lhs, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokOp, "+") || p.at(TokOp, "-") {
		op := p.next().Text
		rhs, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: op, Lhs: lhs, Rhs: rhs}
	}
	return lhs, nil
}

func (p *parser) mulExpr() (Expr, error) {
	lhs, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokOp, "*") || p.at(TokOp, "/") || p.at(TokOp, "%") {
		op := p.next().Text
		rhs, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: op, Lhs: lhs, Rhs: rhs}
	}
	return lhs, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.at(TokOp, "-") {
		p.next()
		rhs, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", Rhs: rhs}, nil
	}
	return p.postfixExpr()
}

// postfixExpr parses a primary followed by .field / .method(args) chains.
func (p *parser) postfixExpr() (Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.at(TokOp, ".") {
		p.next()
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if p.at(TokOp, "(") {
			args, err := p.args()
			if err != nil {
				return nil, err
			}
			e = &MethodCallExpr{Obj: e, Name: name.Text, Args: args, Line: name.Line}
		} else {
			e = &FieldExpr{Obj: e, Name: name.Text}
		}
	}
	return e, nil
}

func (p *parser) args() ([]Expr, error) {
	if _, err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	var out []Expr
	for !p.at(TokOp, ")") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if p.at(TokOp, ",") {
			p.next()
		} else if !p.at(TokOp, ")") {
			return nil, p.errf(p.peek(), "expected , or ) in argument list, found %s", p.peek())
		}
	}
	p.next() // )
	return out, nil
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokInt:
		p.next()
		var v int64
		if _, err := fmt.Sscanf(t.Text, "%d", &v); err != nil {
			return nil, p.errf(t, "bad integer literal %s", t)
		}
		return &IntLit{Value: v}, nil
	case TokFloat:
		p.next()
		var v float64
		if _, err := fmt.Sscanf(t.Text, "%g", &v); err != nil {
			return nil, p.errf(t, "bad float literal %s", t)
		}
		return &FloatLit{Value: v}, nil
	case TokString:
		p.next()
		return &StrLit{Value: t.Text}, nil
	case TokIdent:
		p.next()
		if p.at(TokOp, "(") {
			args, err := p.args()
			if err != nil {
				return nil, err
			}
			return &CallExpr{Name: t.Text, Args: args, Line: t.Line}, nil
		}
		return &Ident{Name: t.Text}, nil
	case TokKeyword:
		switch t.Text {
		case "True":
			p.next()
			return &BoolLit{Value: true}, nil
		case "False":
			p.next()
			return &BoolLit{Value: false}, nil
		case "Null":
			p.next()
			return &NullLit{}, nil
		case "self":
			p.next()
			return &SelfExpr{}, nil
		case "MESSAGE":
			p.next()
			if _, err := p.expect(TokOp, "."); err != nil {
				return nil, err
			}
			name, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			args, err := p.args()
			if err != nil {
				return nil, err
			}
			return &MessageExpr{Name: name.Text, Args: args}, nil
		case "new":
			p.next()
			name, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			args, err := p.args()
			if err != nil {
				return nil, err
			}
			return &NewExpr{Class: name.Text, Args: args, Line: t.Line}, nil
		}
	}
	if t.Kind == TokOp && t.Text == "(" {
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf(t, "unexpected token %s in expression", t)
}
