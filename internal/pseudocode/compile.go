package pseudocode

import (
	"fmt"
	"sort"
)

// Op is a VM opcode.
type Op int

// Opcodes. OpStep marks the start of an atomic statement: tasks park at
// OpStep (or at a blocked blocking-op) between scheduler turns, which gives
// exactly the paper's interleaving granularity ("simple statements are
// executed atomically").
const (
	OpStep        Op = iota // statement boundary marker
	OpPush                  // push Consts[A]
	OpLoad                  // push variable S (locals → self fields → globals)
	OpStore                 // store top of stack into S
	OpLoadSelf              // push the frame's self reference
	OpGetField              // pop obj, push obj.S
	OpSetField              // pop value, pop obj, set obj.S
	OpBinary                // pop rhs, lhs; push lhs S rhs
	OpUnary                 // pop v; push S v
	OpJump                  // ip = A
	OpJumpIfFalse           // pop cond; if false ip = A
	OpPrint                 // pop v, append to output; A==1 appends newline
	OpCall                  // call global function S with A args
	OpCallMethod            // pop A args then obj; call method S
	OpReturn                // pop return value, pop frame
	OpPop                   // discard top of stack
	OpMakeMsg               // pop A args; push MESSAGE.S(args)
	OpNew                   // push new instance of class S
	OpSend                  // pop target, msg; enqueue msg in target's mailbox
	OpAcquire               // acquire footprint Footprints[A] (blocking)
	OpRelease               // release footprint Footprints[A]
	OpWait                  // release footprint Footprints[A], park until NOTIFY
	OpNotify                // wake waiters
	OpPara                  // spawn tasks ParaBlocks[A]
	OpParaJoin              // block until this task's children finish
	OpReceive               // dispatch per RecvTables[A] (blocking, choice)
)

var opNames = [...]string{
	"STEP", "PUSH", "LOAD", "STORE", "LOADSELF", "GETFIELD", "SETFIELD",
	"BINARY", "UNARY", "JUMP", "JMPFALSE", "PRINT", "CALL", "CALLMETHOD",
	"RETURN", "POP", "MAKEMSG", "NEW", "SEND", "ACQUIRE", "RELEASE",
	"WAIT", "NOTIFY", "PARA", "PARAJOIN", "RECEIVE",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Instr is one VM instruction.
type Instr struct {
	Op   Op
	A    int    // numeric operand (jump target, argc, table index)
	S    string // symbolic operand (name, operator)
	Line int    // source line for traces and errors
	L    int    // OpLoad/OpStore: local slot (-1 = name is never a local here)
	G    int    // OpLoad/OpStore: global slot (-1 = unused)
}

// CompiledClause is one ON_RECEIVING arm after compilation.
type CompiledClause struct {
	MsgName    string
	Params     []string
	ParamSlots []int // local slots bound on delivery (parallel to Params)
	Target     int   // jump target of the clause body
}

// RecvTable is the dispatch table of one OpReceive.
type RecvTable struct {
	Clauses []CompiledClause
}

// CodeObject is a compiled function, method, top-level program, or PARA
// child.
type CodeObject struct {
	Name       string
	Params     []string
	Instrs     []Instr
	IsReceiver bool     // body contains ON_RECEIVING: calls spawn a task
	IsMethod   bool     // defined inside a CLASS
	ExcVars    []string // union of EXC_ACC footprints (for CoarseLock)
	ExcIdx     []int    // ExcVars as lock slots
	// Slot resolution: every name that could ever be a frame local of this
	// code object (params first, then receive-clause params and assignment
	// targets) gets a fixed slot, so frames can store locals in a []Value.
	NumLocals  int
	LocalNames []string // slot -> name
	// stepFPs[ip] is the static footprint of the atomic step a task parked
	// at ip would execute next (used by partial-order reduction).
	stepFPs []*stepFP
	// spawnName is the task name used when this PARA child is spawned
	// (precomputed so OpPara allocates nothing).
	spawnName string
	// id is a dense program-unique index, used in place of Name by the
	// state encoding.
	id int
}

// Compiled is a fully compiled program.
type Compiled struct {
	Main         *CodeObject
	Funcs        map[string]*CodeObject
	Classes      map[string]map[string]*CodeObject
	Footprints   [][]string // EXC_ACC variable sets by index
	FootprintIdx [][]int    // the same sets as lock slots
	ParaBlocks   [][]*CodeObject
	RecvTables   []RecvTable
	Consts       []Value
	// GlobalNames/LockVars give every name that can ever be a global (resp.
	// a guarded variable) a fixed slot, so World state is slice-indexed.
	GlobalNames []string
	LockVars    []string
	globalIdx   map[string]int
	lockIdx     map[string]int
}

// CompileError reports a semantic error found during compilation.
type CompileError struct {
	Line int
	Msg  string
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("pseudocode: line %d: %s", e.Line, e.Msg)
}

// Compile translates a parsed program to VM code.
func Compile(prog *Program) (*Compiled, error) {
	c := &compiler{
		out: &Compiled{
			Funcs:   map[string]*CodeObject{},
			Classes: map[string]map[string]*CodeObject{},
		},
		constIdx: map[string]int{},
	}
	// First pass: hoist function and class declarations so calls can appear
	// before definitions (the figures define after use in places).
	var mainStmts []Stmt
	for _, s := range prog.Stmts {
		switch d := s.(type) {
		case *DefineStmt:
			if _, dup := c.out.Funcs[d.Name]; dup {
				return nil, &CompileError{d.Line, "duplicate function " + d.Name}
			}
			c.out.Funcs[d.Name] = nil // reserve
		case *ClassStmt:
			if _, dup := c.out.Classes[d.Name]; dup {
				return nil, &CompileError{d.Line, "duplicate class " + d.Name}
			}
			c.out.Classes[d.Name] = map[string]*CodeObject{}
			for _, m := range d.Methods {
				if _, dup := c.out.Classes[d.Name][m.Name]; dup {
					return nil, &CompileError{m.Line, "duplicate method " + m.Name}
				}
				c.out.Classes[d.Name][m.Name] = nil
			}
		default:
			mainStmts = append(mainStmts, s)
		}
	}
	for _, s := range prog.Stmts {
		switch d := s.(type) {
		case *DefineStmt:
			co, err := c.compileFunc(d, false)
			if err != nil {
				return nil, err
			}
			c.out.Funcs[d.Name] = co
		case *ClassStmt:
			for _, m := range d.Methods {
				co, err := c.compileFunc(m, true)
				if err != nil {
					return nil, err
				}
				co.Name = d.Name + "." + m.Name
				c.out.Classes[d.Name][m.Name] = co
			}
		}
	}
	main, err := c.compileBlock("main", nil, mainStmts, false)
	if err != nil {
		return nil, err
	}
	c.out.Main = main
	c.finalize()
	return c.out, nil
}

// finalize runs the post-compilation passes: name-to-slot resolution for
// locals/globals/locks, and the static per-step footprints used by
// partial-order reduction.
func (c *compiler) finalize() {
	p := c.out
	p.globalIdx = map[string]int{}
	p.lockIdx = map[string]int{}
	// Lock slots: every variable appearing in any EXC_ACC footprint.
	p.FootprintIdx = make([][]int, len(p.Footprints))
	for i, fp := range p.Footprints {
		idx := make([]int, len(fp))
		for j, name := range fp {
			idx[j] = c.lockSlot(name)
		}
		p.FootprintIdx[i] = idx
	}
	for i, code := range p.allCodeObjects() {
		code.id = i
		code.ExcIdx = make([]int, len(code.ExcVars))
		for j, name := range code.ExcVars {
			code.ExcIdx[j] = c.lockSlot(name)
		}
		c.assignSlots(code)
	}
	computeStepFootprints(p)
}

func (c *compiler) lockSlot(name string) int {
	if i, ok := c.out.lockIdx[name]; ok {
		return i
	}
	c.out.LockVars = append(c.out.LockVars, name)
	c.out.lockIdx[name] = len(c.out.LockVars) - 1
	return len(c.out.LockVars) - 1
}

func (c *compiler) globalSlot(name string) int {
	if i, ok := c.out.globalIdx[name]; ok {
		return i
	}
	c.out.GlobalNames = append(c.out.GlobalNames, name)
	c.out.globalIdx[name] = len(c.out.GlobalNames) - 1
	return len(c.out.GlobalNames) - 1
}

// allCodeObjects lists every compiled code object exactly once.
func (p *Compiled) allCodeObjects() []*CodeObject {
	out := []*CodeObject{p.Main}
	names := make([]string, 0, len(p.Funcs))
	for name := range p.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if p.Funcs[name] != nil {
			out = append(out, p.Funcs[name])
		}
	}
	classes := make([]string, 0, len(p.Classes))
	for name := range p.Classes {
		classes = append(classes, name)
	}
	sort.Strings(classes)
	for _, cls := range classes {
		methods := make([]string, 0, len(p.Classes[cls]))
		for m := range p.Classes[cls] {
			methods = append(methods, m)
		}
		sort.Strings(methods)
		for _, m := range methods {
			if p.Classes[cls][m] != nil {
				out = append(out, p.Classes[cls][m])
			}
		}
	}
	for _, children := range p.ParaBlocks {
		out = append(out, children...)
	}
	return out
}

// assignSlots gives every potential frame-local of code a slot (params take
// the first slots, so call argument binding is a copy) and annotates
// OpLoad/OpStore with local and global slots. Name resolution stays dynamic
// — locals, then self fields, then globals — but each tier is now an index
// lookup: a local slot holding nil means "not bound here".
func (c *compiler) assignSlots(code *CodeObject) {
	local := map[string]int{}
	add := func(name string) int {
		if i, ok := local[name]; ok {
			return i
		}
		local[name] = len(code.LocalNames)
		code.LocalNames = append(code.LocalNames, name)
		return len(code.LocalNames) - 1
	}
	for _, pname := range code.Params {
		add(pname)
	}
	for i := range code.Instrs {
		in := &code.Instrs[i]
		switch in.Op {
		case OpStore:
			add(in.S)
		case OpReceive:
			clauses := c.out.RecvTables[in.A].Clauses
			for ci := range clauses {
				cl := &clauses[ci]
				cl.ParamSlots = make([]int, len(cl.Params))
				for pi, pname := range cl.Params {
					cl.ParamSlots[pi] = add(pname)
				}
			}
		}
	}
	code.NumLocals = len(code.LocalNames)
	for i := range code.Instrs {
		in := &code.Instrs[i]
		if in.Op != OpLoad && in.Op != OpStore {
			continue
		}
		if slot, ok := local[in.S]; ok {
			in.L = slot
		} else {
			in.L = -1
		}
		in.G = c.globalSlot(in.S)
	}
}

// CompileSource parses and compiles src in one call.
func CompileSource(src string) (*Compiled, error) {
	p, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(p)
}

type compiler struct {
	out      *Compiled
	constIdx map[string]int
}

// fnCtx carries per-function compilation context.
type fnCtx struct {
	code     *CodeObject
	isMethod bool
	params   map[string]bool
	excStack []int // footprint indices of enclosing EXC_ACC blocks
}

func (c *compiler) compileFunc(d *DefineStmt, isMethod bool) (*CodeObject, error) {
	co, err := c.compileBlock(d.Name, d.Params, d.Body, isMethod)
	if err != nil {
		return nil, err
	}
	return co, nil
}

func (c *compiler) compileBlock(name string, params []string, body []Stmt, isMethod bool) (*CodeObject, error) {
	code := &CodeObject{Name: name, Params: params, IsMethod: isMethod}
	ctx := &fnCtx{code: code, isMethod: isMethod, params: map[string]bool{}}
	for _, p := range params {
		ctx.params[p] = true
	}
	if err := c.stmts(ctx, body); err != nil {
		return nil, err
	}
	// Implicit return Null at the end (top level: frame pop ends the task).
	c.emit(ctx, Instr{Op: OpPush, A: c.constant(NullV{})})
	c.emit(ctx, Instr{Op: OpReturn})
	return code, nil
}

func (c *compiler) emit(ctx *fnCtx, in Instr) int {
	ctx.code.Instrs = append(ctx.code.Instrs, in)
	return len(ctx.code.Instrs) - 1
}

func (c *compiler) constant(v Value) int {
	key := encodeValue(v)
	if i, ok := c.constIdx[key]; ok {
		return i
	}
	c.out.Consts = append(c.out.Consts, v)
	c.constIdx[key] = len(c.out.Consts) - 1
	return len(c.out.Consts) - 1
}

func (c *compiler) stmts(ctx *fnCtx, body []Stmt) error {
	for _, s := range body {
		if err := c.stmt(ctx, s); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) stmt(ctx *fnCtx, s Stmt) error {
	switch st := s.(type) {
	case *AssignStmt:
		c.emit(ctx, Instr{Op: OpStep, Line: st.Line})
		switch tgt := st.Target.(type) {
		case *Ident:
			if err := c.expr(ctx, st.Value); err != nil {
				return err
			}
			c.emit(ctx, Instr{Op: OpStore, S: tgt.Name, Line: st.Line})
		case *FieldExpr:
			if err := c.expr(ctx, tgt.Obj); err != nil {
				return err
			}
			if err := c.expr(ctx, st.Value); err != nil {
				return err
			}
			c.emit(ctx, Instr{Op: OpSetField, S: tgt.Name, Line: st.Line})
		default:
			return &CompileError{st.Line, "invalid assignment target"}
		}
	case *PrintStmt:
		c.emit(ctx, Instr{Op: OpStep, Line: st.Line})
		if err := c.expr(ctx, st.Value); err != nil {
			return err
		}
		nl := 0
		if st.Newline {
			nl = 1
		}
		c.emit(ctx, Instr{Op: OpPrint, A: nl, Line: st.Line})
	case *IfStmt:
		c.emit(ctx, Instr{Op: OpStep, Line: st.Line})
		if err := c.expr(ctx, st.Cond); err != nil {
			return err
		}
		jf := c.emit(ctx, Instr{Op: OpJumpIfFalse, Line: st.Line})
		if err := c.stmts(ctx, st.Then); err != nil {
			return err
		}
		jend := c.emit(ctx, Instr{Op: OpJump, Line: st.Line})
		ctx.code.Instrs[jf].A = len(ctx.code.Instrs)
		if err := c.stmts(ctx, st.Else); err != nil {
			return err
		}
		ctx.code.Instrs[jend].A = len(ctx.code.Instrs)
	case *WhileStmt:
		top := len(ctx.code.Instrs)
		c.emit(ctx, Instr{Op: OpStep, Line: st.Line})
		if err := c.expr(ctx, st.Cond); err != nil {
			return err
		}
		jf := c.emit(ctx, Instr{Op: OpJumpIfFalse, Line: st.Line})
		if err := c.stmts(ctx, st.Body); err != nil {
			return err
		}
		c.emit(ctx, Instr{Op: OpJump, A: top, Line: st.Line})
		ctx.code.Instrs[jf].A = len(ctx.code.Instrs)
	case *DefineStmt:
		return &CompileError{st.Line, "nested DEFINE is not allowed"}
	case *ClassStmt:
		return &CompileError{st.Line, "nested CLASS is not allowed"}
	case *ParaStmt:
		children := make([]*CodeObject, 0, len(st.Tasks))
		for i, ts := range st.Tasks {
			child, err := c.compileBlock(fmt.Sprintf("%s/para%d", ctx.code.Name, i), nil, []Stmt{ts}, ctx.isMethod)
			if err != nil {
				return err
			}
			child.spawnName = fmt.Sprintf("%s#%d", child.Name, i)
			children = append(children, child)
		}
		c.out.ParaBlocks = append(c.out.ParaBlocks, children)
		idx := len(c.out.ParaBlocks) - 1
		c.emit(ctx, Instr{Op: OpStep, Line: st.Line})
		c.emit(ctx, Instr{Op: OpPara, A: idx, Line: st.Line})
		c.emit(ctx, Instr{Op: OpParaJoin, Line: st.Line})
	case *ExcAccStmt:
		fp := c.footprint(ctx, st.Body, st.Line)
		c.out.Footprints = append(c.out.Footprints, fp)
		idx := len(c.out.Footprints) - 1
		// Record the union footprint on the code object for CoarseLock.
		ctx.code.ExcVars = unionSorted(ctx.code.ExcVars, fp)
		c.emit(ctx, Instr{Op: OpStep, Line: st.Line})
		c.emit(ctx, Instr{Op: OpAcquire, A: idx, Line: st.Line})
		ctx.excStack = append(ctx.excStack, idx)
		if err := c.stmts(ctx, st.Body); err != nil {
			return err
		}
		ctx.excStack = ctx.excStack[:len(ctx.excStack)-1]
		c.emit(ctx, Instr{Op: OpStep, Line: st.Line})
		c.emit(ctx, Instr{Op: OpRelease, A: idx, Line: st.Line})
	case *WaitStmt:
		if len(ctx.excStack) == 0 {
			return &CompileError{st.Line, "WAIT() outside EXC_ACC"}
		}
		c.emit(ctx, Instr{Op: OpStep, Line: st.Line})
		c.emit(ctx, Instr{Op: OpWait, A: ctx.excStack[len(ctx.excStack)-1], Line: st.Line})
	case *NotifyStmt:
		if len(ctx.excStack) == 0 {
			return &CompileError{st.Line, "NOTIFY() outside EXC_ACC"}
		}
		c.emit(ctx, Instr{Op: OpStep, Line: st.Line})
		c.emit(ctx, Instr{Op: OpNotify, Line: st.Line})
	case *SendStmt:
		c.emit(ctx, Instr{Op: OpStep, Line: st.Line})
		if err := c.expr(ctx, st.Msg); err != nil {
			return err
		}
		if err := c.expr(ctx, st.Target); err != nil {
			return err
		}
		c.emit(ctx, Instr{Op: OpSend, Line: st.Line})
	case *ReceiveStmt:
		ctx.code.IsReceiver = true
		table := RecvTable{}
		c.out.RecvTables = append(c.out.RecvTables, table)
		tblIdx := len(c.out.RecvTables) - 1
		c.emit(ctx, Instr{Op: OpStep, Line: st.Line})
		recvPos := c.emit(ctx, Instr{Op: OpReceive, A: tblIdx, Line: st.Line})
		loopTop := recvPos - 1 // the OpStep before OpReceive
		// Jump over the clause bodies happens via each clause ending with a
		// jump back to the loop top; compile bodies and record targets.
		var clauses []CompiledClause
		for _, cl := range st.Clauses {
			target := len(ctx.code.Instrs)
			for _, p := range cl.Params {
				ctx.params[p] = false // clause params are frame locals
			}
			if err := c.stmts(ctx, cl.Body); err != nil {
				return err
			}
			c.emit(ctx, Instr{Op: OpJump, A: loopTop, Line: cl.Line})
			clauses = append(clauses, CompiledClause{MsgName: cl.MsgName, Params: cl.Params, Target: target})
		}
		c.out.RecvTables[tblIdx] = RecvTable{Clauses: clauses}
	case *ReturnStmt:
		c.emit(ctx, Instr{Op: OpStep, Line: st.Line})
		if st.Value != nil {
			if err := c.expr(ctx, st.Value); err != nil {
				return err
			}
		} else {
			c.emit(ctx, Instr{Op: OpPush, A: c.constant(NullV{}), Line: st.Line})
		}
		c.emit(ctx, Instr{Op: OpReturn, Line: st.Line})
	case *ExprStmt:
		c.emit(ctx, Instr{Op: OpStep, Line: st.Line})
		if err := c.expr(ctx, st.E); err != nil {
			return err
		}
		c.emit(ctx, Instr{Op: OpPop, Line: st.Line})
	default:
		return &CompileError{0, fmt.Sprintf("unhandled statement %T", s)}
	}
	return nil
}

func (c *compiler) expr(ctx *fnCtx, e Expr) error {
	switch ex := e.(type) {
	case *IntLit:
		c.emit(ctx, Instr{Op: OpPush, A: c.constant(IntV(ex.Value))})
	case *FloatLit:
		c.emit(ctx, Instr{Op: OpPush, A: c.constant(FloatV(ex.Value))})
	case *StrLit:
		c.emit(ctx, Instr{Op: OpPush, A: c.constant(StrV(ex.Value))})
	case *BoolLit:
		c.emit(ctx, Instr{Op: OpPush, A: c.constant(BoolV(ex.Value))})
	case *NullLit:
		c.emit(ctx, Instr{Op: OpPush, A: c.constant(NullV{})})
	case *Ident:
		c.emit(ctx, Instr{Op: OpLoad, S: ex.Name})
	case *SelfExpr:
		if !ctx.isMethod {
			return &CompileError{0, "self outside class method"}
		}
		c.emit(ctx, Instr{Op: OpLoadSelf})
	case *FieldExpr:
		if err := c.expr(ctx, ex.Obj); err != nil {
			return err
		}
		c.emit(ctx, Instr{Op: OpGetField, S: ex.Name})
	case *BinaryExpr:
		if err := c.expr(ctx, ex.Lhs); err != nil {
			return err
		}
		if err := c.expr(ctx, ex.Rhs); err != nil {
			return err
		}
		c.emit(ctx, Instr{Op: OpBinary, S: ex.Op})
	case *UnaryExpr:
		if err := c.expr(ctx, ex.Rhs); err != nil {
			return err
		}
		c.emit(ctx, Instr{Op: OpUnary, S: ex.Op})
	case *CallExpr:
		for _, a := range ex.Args {
			if err := c.expr(ctx, a); err != nil {
				return err
			}
		}
		if _, ok := c.out.Funcs[ex.Name]; !ok {
			return &CompileError{ex.Line, "call to undefined function " + ex.Name}
		}
		c.emit(ctx, Instr{Op: OpCall, S: ex.Name, A: len(ex.Args), Line: ex.Line})
	case *MethodCallExpr:
		if err := c.expr(ctx, ex.Obj); err != nil {
			return err
		}
		for _, a := range ex.Args {
			if err := c.expr(ctx, a); err != nil {
				return err
			}
		}
		c.emit(ctx, Instr{Op: OpCallMethod, S: ex.Name, A: len(ex.Args), Line: ex.Line})
	case *MessageExpr:
		for _, a := range ex.Args {
			if err := c.expr(ctx, a); err != nil {
				return err
			}
		}
		c.emit(ctx, Instr{Op: OpMakeMsg, S: ex.Name, A: len(ex.Args)})
	case *NewExpr:
		if len(ex.Args) != 0 {
			return &CompileError{ex.Line, "constructors take no arguments; assign fields instead"}
		}
		if _, ok := c.out.Classes[ex.Class]; !ok {
			return &CompileError{ex.Line, "unknown class " + ex.Class}
		}
		c.emit(ctx, Instr{Op: OpNew, S: ex.Class, Line: ex.Line})
	default:
		return &CompileError{0, fmt.Sprintf("unhandled expression %T", e)}
	}
	return nil
}

// footprint computes the variable set guarded by an EXC_ACC block: every
// plain identifier referenced in the block that is not a parameter of the
// enclosing function and not a known function/class name. Per Figure 4,
// "other function calls that read or modify the same variables that appear
// inside the markers may not execute".
func (c *compiler) footprint(ctx *fnCtx, body []Stmt, line int) []string {
	vars := map[string]bool{}
	var walkExpr func(Expr)
	var walkStmt func(Stmt)
	walkExpr = func(e Expr) {
		switch ex := e.(type) {
		case *Ident:
			if !ctx.params[ex.Name] {
				if _, isFn := c.out.Funcs[ex.Name]; !isFn {
					vars[ex.Name] = true
				}
			}
		case *FieldExpr:
			walkExpr(ex.Obj)
		case *BinaryExpr:
			walkExpr(ex.Lhs)
			walkExpr(ex.Rhs)
		case *UnaryExpr:
			walkExpr(ex.Rhs)
		case *CallExpr:
			for _, a := range ex.Args {
				walkExpr(a)
			}
		case *MethodCallExpr:
			walkExpr(ex.Obj)
			for _, a := range ex.Args {
				walkExpr(a)
			}
		case *MessageExpr:
			for _, a := range ex.Args {
				walkExpr(a)
			}
		}
	}
	walkStmt = func(s Stmt) {
		switch st := s.(type) {
		case *AssignStmt:
			walkExpr(st.Target)
			walkExpr(st.Value)
		case *PrintStmt:
			walkExpr(st.Value)
		case *IfStmt:
			walkExpr(st.Cond)
			for _, t := range st.Then {
				walkStmt(t)
			}
			for _, t := range st.Else {
				walkStmt(t)
			}
		case *WhileStmt:
			walkExpr(st.Cond)
			for _, t := range st.Body {
				walkStmt(t)
			}
		case *ExcAccStmt:
			// A nested EXC_ACC guards its own footprint; the outer block
			// guards only the variables appearing outside it. (Figure 4
			// specifies single blocks; this scoping choice preserves
			// hold-and-wait, so the classic lock-ordering deadlock the
			// course teaches is expressible.)
		case *SendStmt:
			walkExpr(st.Msg)
			walkExpr(st.Target)
		case *ReturnStmt:
			if st.Value != nil {
				walkExpr(st.Value)
			}
		case *ExprStmt:
			walkExpr(st.E)
		case *ParaStmt:
			for _, t := range st.Tasks {
				walkStmt(t)
			}
		}
	}
	for _, s := range body {
		walkStmt(s)
	}
	out := make([]string, 0, len(vars))
	for v := range vars {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func unionSorted(a, b []string) []string {
	set := map[string]bool{}
	for _, x := range a {
		set[x] = true
	}
	for _, x := range b {
		set[x] = true
	}
	out := make([]string, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Strings(out)
	return out
}
