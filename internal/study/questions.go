package study

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/pseudocode"
)

// sharedSrc is the instrumented shared-memory single-lane bridge used by
// the shared-memory section of Test 1 (Figure 6's program). Per-car flags
// record method returns so questions about "has returned from redEnter"
// are state-reachability questions.
const sharedSrc = `
redOnBridge = 0
blueOnBridge = 0
crossed = 0
aEntered = 0
aExited = 0
bEntered = 0
bExited = 0
cEntered = 0
cExited = 0

DEFINE redEnter()
    EXC_ACC
        WHILE blueOnBridge > 0
            WAIT()
        ENDWHILE
        redOnBridge = redOnBridge + 1
    END_EXC_ACC
ENDDEF

DEFINE redExit()
    EXC_ACC
        redOnBridge = redOnBridge - 1
        crossed = crossed + 1
        NOTIFY()
    END_EXC_ACC
ENDDEF

DEFINE blueEnter()
    EXC_ACC
        WHILE redOnBridge > 0
            WAIT()
        ENDWHILE
        blueOnBridge = blueOnBridge + 1
    END_EXC_ACC
ENDDEF

DEFINE blueExit()
    EXC_ACC
        blueOnBridge = blueOnBridge - 1
        crossed = crossed + 1
        NOTIFY()
    END_EXC_ACC
ENDDEF

DEFINE redRunA()
    redEnter()
    aEntered = 1
    redExit()
    aExited = 1
ENDDEF

DEFINE redRunB()
    redEnter()
    bEntered = 1
    redExit()
    bExited = 1
ENDDEF

DEFINE blueRunC()
    blueEnter()
    cEntered = 1
    blueExit()
    cExited = 1
ENDDEF

PARA
    redRunA()
    redRunB()
    blueRunC()
ENDPARA
`

// messageSrc is the instrumented message-passing bridge used by the
// message-passing section (Figure 7's program). Cars record protocol
// progress in their fields.
const messageSrc = `
crossed = 0

CLASS Bridge
    DEFINE init()
        self.red = 0
        self.blue = 0
    ENDDEF
    DEFINE start
        ON_RECEIVING
            MESSAGE.redEnter(car)
                IF blue > 0 THEN
                    Send(MESSAGE.redEnter(car)).To(self)
                ELSE
                    red = red + 1
                    Send(MESSAGE.succeedEnter(red)).To(car)
                ENDIF
            MESSAGE.redExit(car)
                red = red - 1
                Send(MESSAGE.succeedExit(red)).To(car)
            MESSAGE.blueEnter(car)
                IF red > 0 THEN
                    Send(MESSAGE.blueEnter(car)).To(self)
                ELSE
                    blue = blue + 1
                    Send(MESSAGE.succeedEnter(blue)).To(car)
                ENDIF
            MESSAGE.blueExit(car)
                blue = blue - 1
                Send(MESSAGE.succeedExit(blue)).To(car)
    ENDDEF
ENDCLASS

CLASS Car
    DEFINE init(carname)
        self.carname = carname
        self.entered = 0
        self.exitSent = 0
        self.exited = 0
    ENDDEF
    DEFINE startRed
        Send(MESSAGE.redEnter(self)).To(bridge)
        ON_RECEIVING
            MESSAGE.succeedEnter(n)
                self.entered = 1
                self.exitSent = 1
                Send(MESSAGE.redExit(self)).To(bridge)
            MESSAGE.succeedExit(n)
                self.exited = 1
                crossed = crossed + 1
    ENDDEF
    DEFINE startBlue
        Send(MESSAGE.blueEnter(self)).To(bridge)
        ON_RECEIVING
            MESSAGE.succeedEnter(n)
                self.entered = 1
                self.exitSent = 1
                Send(MESSAGE.blueExit(self)).To(bridge)
            MESSAGE.succeedExit(n)
                self.exited = 1
                crossed = crossed + 1
    ENDDEF
ENDCLASS

bridge = new Bridge()
bridge.init()

redCarA = new Car()
redCarA.init("redCarA")
redCarB = new Car()
redCarB.init("redCarB")
blueCarA = new Car()
blueCarA.init("blueCarA")

PARA
    bridge.start()
    redCarA.startRed()
    redCarB.startRed()
    blueCarA.startBlue()
ENDPARA
`

// Question is one Test-1 item: "could this happen?" with a YES/NO ground
// truth derived from exhaustive exploration.
type Question struct {
	ID        string
	Section   Section
	Text      string
	Truth     bool   // ground truth (YES = true)
	Complex   bool   // large execution space: a [U1] uncertainty target
	FlippedBy []Code // misconceptions that flip the student's answer

	pred func(w *pseudocode.World) bool
}

// Bank is the full two-section question set with computed ground truths.
type Bank struct {
	Questions []Question
}

// BySection returns the questions of one section.
func (b *Bank) BySection(s Section) []Question {
	var out []Question
	for _, q := range b.Questions {
		if q.Section == s {
			out = append(out, q)
		}
	}
	return out
}

// intGlobal reads an integer global, defaulting to 0.
func intGlobal(w *pseudocode.World, name string) int64 {
	if v, ok := w.GetGlobal(name).(pseudocode.IntV); ok {
		return int64(v)
	}
	return 0
}

// carField reads an integer field from the Car object whose carname field
// matches name.
func carField(w *pseudocode.World, carName, field string) int64 {
	for _, o := range w.ObjectsByClass("Car") {
		if n, ok := o.Field("carname").(pseudocode.StrV); ok && string(n) == carName {
			if v, ok := o.Field(field).(pseudocode.IntV); ok {
				return int64(v)
			}
			return 0
		}
	}
	return 0
}

func bridgeField(w *pseudocode.World, field string) int64 {
	bs := w.ObjectsByClass("Bridge")
	if len(bs) == 0 {
		return 0
	}
	if v, ok := bs[0].Field(field).(pseudocode.IntV); ok {
		return int64(v)
	}
	return 0
}

// questionDefs builds the bank skeleton; truths are filled by exploration.
func questionDefs() []Question {
	return []Question{
		// --- Shared memory section ---
		{
			ID: "SM1", Section: SharedMemory,
			Text:      "Can redCarA and redCarB both be on the bridge at the same time?",
			FlippedBy: []Code{"S5"},
			pred: func(w *pseudocode.World) bool {
				return intGlobal(w, "redOnBridge") == 2
			},
		},
		{
			ID: "SM2", Section: SharedMemory,
			Text: "Can a red car and the blue car both be on the bridge at the same time?",
			pred: func(w *pseudocode.World) bool {
				return intGlobal(w, "redOnBridge") > 0 && intGlobal(w, "blueOnBridge") > 0
			},
		},
		{
			ID: "SM3", Section: SharedMemory,
			Text:      "While redCarA is executing inside redEnter (called, not returned, not waiting), can redCarB also be executing inside redEnter?",
			FlippedBy: []Code{"S7"},
			pred: func(w *pseudocode.World) bool {
				inside := 0
				for _, t := range w.Tasks {
					if t.Done || t.Waiting() {
						continue
					}
					if t.InFunction("redEnter") {
						inside++
					}
				}
				return inside >= 2
			},
		},
		{
			ID: "SM4", Section: SharedMemory,
			Text: "Can redCarB return from redEnter before redCarA does?",
			// S7 ("redCarA has not returned from redEnter so it must still
			// hold the lock" — a direct quote the paper reports) and the
			// order-conflating codes all force a NO here.
			FlippedBy: []Code{"S7", "S1", "S4"},
			pred: func(w *pseudocode.World) bool {
				return intGlobal(w, "bEntered") == 1 && intGlobal(w, "aEntered") == 0
			},
		},
		{
			ID: "SM5", Section: SharedMemory,
			Text:      "While blueCarA is on the bridge, can a red car be suspended in WAIT() inside redEnter (holding no access)?",
			FlippedBy: []Code{"S5", "S3"},
			pred: func(w *pseudocode.World) bool {
				if intGlobal(w, "blueOnBridge") == 0 {
					return false
				}
				for _, t := range w.Tasks {
					if !t.Done && t.Waiting() && t.InFunction("redEnter") {
						return true
					}
				}
				return false
			},
		},
		{
			ID: "SM6", Section: SharedMemory,
			Text: "Can both red cars be suspended in WAIT() at the same time (and then both be woken by one NOTIFY)?",
			// An S5 student places the second red car at the lock, not in
			// WAIT, so both-waiting reads as impossible.
			FlippedBy: []Code{"S6", "S5"},
			pred: func(w *pseudocode.World) bool {
				waiting := 0
				for _, t := range w.Tasks {
					if !t.Done && t.Waiting() && t.InFunction("redEnter") {
						waiting++
					}
				}
				return waiting >= 2
			},
		},
		{
			ID: "SM7", Section: SharedMemory, Complex: true,
			Text: "Can the program finish with fewer than three crossings?",
			pred: func(w *pseudocode.World) bool {
				return w.Classify() == pseudocode.Completed && intGlobal(w, "crossed") != 3
			},
		},
		{
			ID: "SM8", Section: SharedMemory, Complex: true,
			Text:      "Can the system deadlock?",
			FlippedBy: []Code{"S6"},
			pred: func(w *pseudocode.World) bool {
				return w.Classify() == pseudocode.Deadlocked
			},
		},
		// --- Message passing section ---
		{
			ID: "MP1", Section: MessagePassing,
			Text:      "Can redCarB receive succeedEnter before redCarA receives one?",
			FlippedBy: []Code{"M5"},
			pred: func(w *pseudocode.World) bool {
				return carField(w, "redCarB", "entered") == 1 && carField(w, "redCarA", "entered") == 0
			},
		},
		{
			ID: "MP2", Section: MessagePassing,
			Text:      "Can the bridge have granted a red car entry while neither red car has received its succeedEnter yet?",
			FlippedBy: []Code{"M4"},
			pred: func(w *pseudocode.World) bool {
				return bridgeField(w, "red") > 0 &&
					carField(w, "redCarA", "entered") == 0 &&
					carField(w, "redCarB", "entered") == 0
			},
		},
		{
			ID: "MP3", Section: MessagePassing,
			Text:      "Can redCarB send redExit before redCarA has sent its redExit?",
			FlippedBy: []Code{"M3"},
			pred: func(w *pseudocode.World) bool {
				return carField(w, "redCarB", "exitSent") == 1 && carField(w, "redCarA", "exitSent") == 0
			},
		},
		{
			ID: "MP4", Section: MessagePassing,
			Text:      "Can blueCarA complete its crossing before either red car has entered the bridge?",
			FlippedBy: []Code{"M1"},
			pred: func(w *pseudocode.World) bool {
				return carField(w, "blueCarA", "exited") == 1 &&
					carField(w, "redCarA", "entered") == 0 &&
					carField(w, "redCarB", "entered") == 0
			},
		},
		{
			ID: "MP5", Section: MessagePassing, Complex: true,
			Text: "Can the bridge process redCarA's redExit before redCarA's redEnter?",
			pred: func(w *pseudocode.World) bool {
				// redExit is only ever sent after succeedEnter is received,
				// so bridge red-count below zero would be the witness.
				return bridgeField(w, "red") < 0
			},
		},
		{
			ID: "MP6", Section: MessagePassing,
			Text: "Can a red car and the blue car both be granted the bridge at the same time?",
			pred: func(w *pseudocode.World) bool {
				return bridgeField(w, "red") > 0 && bridgeField(w, "blue") > 0
			},
		},
		{
			ID: "MP7", Section: MessagePassing,
			Text:      "Can a car's send block because the bridge is busy?",
			FlippedBy: []Code{"M3"},
			pred: func(w *pseudocode.World) bool {
				for _, t := range w.Tasks {
					if !t.Done && t.BlockedOn() == "rendezvous" {
						return true
					}
				}
				return false
			},
		},
		{
			ID: "MP8", Section: MessagePassing, Complex: true,
			Text:      "Can the system become quiet with some car never having crossed?",
			FlippedBy: []Code{"M6"},
			pred: func(w *pseudocode.World) bool {
				return w.Classify() == pseudocode.Quiescent && intGlobal(w, "crossed") != 3
			},
		},
	}
}

var (
	bankOnce sync.Once
	bankVal  *Bank
	bankErr  error
)

// BuildBank computes ground truths for every question by exploring each
// section's program once with all of that section's predicates. The result
// is cached process-wide. Exploration runs with partial-order reduction and
// parallel workers — configurations the equivalence tests pin to the plain
// sequential search — so regenerating the bank takes well under a second
// where the reference explorer took seconds.
func BuildBank() (*Bank, error) {
	bankOnce.Do(func() { bankVal, bankErr = buildBank(fastExploreOpts()) })
	return bankVal, bankErr
}

// fastExploreOpts is the production search configuration for ground truths.
func fastExploreOpts() pseudocode.ExploreOpts {
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	return pseudocode.ExploreOpts{POR: true, Workers: workers}
}

func buildBank(base pseudocode.ExploreOpts) (*Bank, error) {
	qs := questionDefs()
	for _, section := range []struct {
		sec Section
		src string
	}{{SharedMemory, sharedSrc}, {MessagePassing, messageSrc}} {
		var idx []int
		var preds []func(*pseudocode.World) bool
		for i := range qs {
			if qs[i].Section == section.sec {
				idx = append(idx, i)
				preds = append(preds, qs[i].pred)
			}
		}
		opts := base
		opts.Predicates = preds
		res, err := pseudocode.ExploreSource(section.src, opts)
		if err != nil {
			return nil, fmt.Errorf("study: exploring %s section: %w", section.sec, err)
		}
		if res.Truncated {
			return nil, fmt.Errorf("study: %s exploration truncated", section.sec)
		}
		for j, i := range idx {
			qs[i].Truth = res.PredicateHits[j]
		}
	}
	return &Bank{Questions: qs}, nil
}
