// Package study reproduces the paper's human-subjects evaluation (Section V
// and VI) by substitution: since no classroom data can exist in a code
// artifact, it builds a generative model of student reasoning. A simulated
// student is a set of misconception codes drawn with the prevalences the
// paper reports in Table III, plus a session-learning effect; answers to
// mechanically generated Test-1 questions follow the misconception-
// perturbed semantics, and grading against explorer ground truth
// regenerates Table II (scores), Table III (misconception counts), and the
// survey findings — in shape, which is the reproducible content of a
// 16-student study.
package study

import "repro/internal/pseudocode"

// Section identifies a Test-1 section.
type Section int

const (
	// SharedMemory is the EXC_ACC/WAIT/NOTIFY section (Figure 6).
	SharedMemory Section = iota
	// MessagePassing is the Send/ON_RECEIVING section (Figure 7).
	MessagePassing
)

func (s Section) String() string {
	if s == SharedMemory {
		return "shared memory"
	}
	return "message passing"
}

// Level is one level of the paper's misconception hierarchy (Table I).
type Level struct {
	Code        string
	Name        string
	Description string
}

// Hierarchy is Table I: the five-level misconception hierarchy.
var Hierarchy = []Level{
	{"D1", "Description", "misconceptions of the system and/or problem descriptions"},
	{"T1", "Terminology", "misinterpretation of a term that describes thread or process behavior"},
	{"C1", "Concurrency", "misconceptions about thread or process behaviors"},
	{"I1", "Implementation", "misconceptions about synchronous mechanisms"},
	{"I2", "Implementation", "misconceptions about asynchronous mechanisms"},
	{"U1", "Uncertainty", "confusion about the space of executions: impossible sequences included or possible ones missed"},
}

// Code names a misconception from Table III, e.g. "M3" or "S7".
type Code string

// Misconception is one Table III entry. PaperCount is the number of
// students (out of 16) the paper observed exhibiting it; the simulation
// uses PaperCount/16 as the prevalence when generating a cohort.
// Semantics, when non-nil, is the perturbed execution semantics that
// formalizes the misconception in the pseudocode VM.
type Misconception struct {
	Code        Code
	Level       string
	Section     Section
	Description string
	PaperCount  int
	Semantics   *pseudocode.Semantics
}

// Catalog is Table III: the misconceptions observed in Test 1 with their
// student counts.
var Catalog = []Misconception{
	// Message passing.
	{Code: "M1", Level: "D1", Section: MessagePassing, PaperCount: 6,
		Description: "misreads the question setting"},
	{Code: "M2", Level: "T1", Section: MessagePassing, PaperCount: 1,
		Description: "misinterprets 'race condition' as 'different order of messages'"},
	{Code: "M3", Level: "C1", Section: MessagePassing, PaperCount: 7,
		Description: "send semantics: a send depends on the receiver's condition or behaves like a synchronous call",
		Semantics:   &pseudocode.Semantics{SendSynchronous: true}},
	{Code: "M4", Level: "C1", Section: MessagePassing, PaperCount: 7,
		Description: "receive semantics: assumes the acknowledged event coincides with receiving the acknowledgement"},
	{Code: "M5", Level: "I2", Section: MessagePassing, PaperCount: 6,
		Description: "conflates message sending order with receiving order",
		Semantics:   &pseudocode.Semantics{FIFOMailboxes: true}},
	{Code: "M6", Level: "U1", Section: MessagePassing, PaperCount: 7,
		Description: "uncertainty: larger state spaces trigger illogical reasoning"},
	// Shared memory.
	{Code: "S1", Level: "D1", Section: SharedMemory, PaperCount: 3,
		Description: "conflates the order of cars with their thread's name"},
	{Code: "S2", Level: "T1", Section: SharedMemory, PaperCount: 1,
		Description: "misinterprets 'race condition' as 'different interleaving'"},
	{Code: "S3", Level: "T1", Section: SharedMemory, PaperCount: 2,
		Description: "misinterprets the terminology 'block on'"},
	{Code: "S4", Level: "C1", Section: SharedMemory, PaperCount: 4,
		Description: "conflates order of method return with order of entering/exiting the bridge"},
	{Code: "S5", Level: "C1", Section: SharedMemory, PaperCount: 9,
		Description: "conflates locking with conditional waiting"},
	{Code: "S6", Level: "I1", Section: SharedMemory, PaperCount: 1,
		Description: "misinterprets WAIT(): conflates wait with continuous execution of the enclosing loop",
		Semantics:   &pseudocode.Semantics{WaitKeepsLock: true}},
	{Code: "S7", Level: "I1", Section: SharedMemory, PaperCount: 10,
		Description: "conflates method invocation/return with lock acquire/release",
		Semantics:   &pseudocode.Semantics{CoarseLock: true}},
	{Code: "S8", Level: "U1", Section: SharedMemory, PaperCount: 2,
		Description: "uncertainty: larger state spaces trigger illogical reasoning"},
}

// CatalogByCode indexes the catalog.
func CatalogByCode() map[Code]Misconception {
	m := make(map[Code]Misconception, len(Catalog))
	for _, mc := range Catalog {
		m[mc.Code] = mc
	}
	return m
}

// CohortSize is the paper's subject count: 9 in group S + 7 in group D.
const (
	GroupSSize = 9
	GroupDSize = 7
	CohortSize = GroupSSize + GroupDSize
)
