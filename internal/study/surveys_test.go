package study

import (
	"math/rand"
	"strings"
	"testing"
)

func TestCourseSurveysShape(t *testing.T) {
	// Across several cohorts, the shared-memory-harder vote must dominate
	// in every assignment — the paper's consistent course-long finding.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		students := GenerateCohort(rng, CohortConfig{})
		surveys := SimulateCourseSurveys(rng, students)
		if len(surveys) != 2 {
			t.Fatalf("surveys = %d", len(surveys))
		}
		for _, s := range surveys {
			if s.Respondents()+s.NoResponse != CohortSize {
				t.Fatalf("%s: accounting broken: %+v", s.Assignment, s)
			}
			if s.SMHarder <= s.MPHarder {
				t.Errorf("trial %d %s: SM harder %d should exceed MP harder %d",
					trial, s.Assignment, s.SMHarder, s.MPHarder)
			}
		}
	}
}

func TestCourseSurveyReportRenders(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	students := GenerateCohort(rng, CohortConfig{})
	report := CourseSurveyReport(SimulateCourseSurveys(rng, students))
	for _, want := range []string{"homework 2+3", "labs 2+3", "shared memory harder", "paper:"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}
