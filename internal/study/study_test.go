package study

import (
	"math/rand"
	"strings"
	"testing"
)

func mustBank(t *testing.T) *Bank {
	t.Helper()
	skipIfShort(t)
	b, err := BuildBank()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// skipIfShort gates tests that need the question bank: its ground-truth
// explorations take tens of seconds (minutes under -race).
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("question-bank construction is expensive; run without -short")
	}
}

func TestHierarchyCoversTableI(t *testing.T) {
	codes := map[string]bool{}
	for _, l := range Hierarchy {
		codes[l.Code] = true
	}
	for _, want := range []string{"D1", "T1", "C1", "I1", "I2", "U1"} {
		if !codes[want] {
			t.Fatalf("hierarchy missing %s", want)
		}
	}
}

func TestCatalogMatchesTableIII(t *testing.T) {
	byCode := CatalogByCode()
	// The paper's counts, verbatim.
	wantCounts := map[Code]int{
		"M1": 6, "M2": 1, "M3": 7, "M4": 7, "M5": 6, "M6": 7,
		"S1": 3, "S2": 1, "S3": 2, "S4": 4, "S5": 9, "S6": 1, "S7": 10, "S8": 2,
	}
	if len(byCode) != len(wantCounts) {
		t.Fatalf("catalog has %d codes, want %d", len(byCode), len(wantCounts))
	}
	for code, want := range wantCounts {
		mc, ok := byCode[code]
		if !ok {
			t.Fatalf("missing %s", code)
		}
		if mc.PaperCount != want {
			t.Fatalf("%s: PaperCount = %d, want %d", code, mc.PaperCount, want)
		}
	}
	// Hierarchy levels must be valid.
	levels := map[string]bool{}
	for _, l := range Hierarchy {
		levels[l.Code] = true
	}
	for _, mc := range Catalog {
		if !levels[mc.Level] {
			t.Fatalf("%s: unknown level %s", mc.Code, mc.Level)
		}
	}
}

func TestBankGroundTruths(t *testing.T) {
	bank := mustBank(t)
	want := map[string]bool{
		"SM1": true,  // two reds can share the bridge
		"SM2": false, // red+blue never share
		"SM3": true,  // two cars inside redEnter
		"SM4": true,  // B can return before A
		"SM5": true,  // WAIT inside while blue on bridge
		"SM6": true,  // both reds can wait together
		"SM7": false, // always 3 crossings
		"SM8": false, // no deadlock
		"MP1": true,  // B's grant can precede A's
		"MP2": true,  // grant precedes receipt
		"MP3": true,  // B can send redExit first
		"MP4": true,  // blue can finish first
		"MP5": false, // exit never processed before enter
		"MP6": false, // never both directions granted
		"MP7": false, // sends never block
		"MP8": false, // all cars always cross
	}
	if len(bank.Questions) != len(want) {
		t.Fatalf("bank has %d questions, want %d", len(bank.Questions), len(want))
	}
	for _, q := range bank.Questions {
		w, ok := want[q.ID]
		if !ok {
			t.Fatalf("unexpected question %s", q.ID)
		}
		if q.Truth != w {
			t.Errorf("%s: truth = %v, want %v (%s)", q.ID, q.Truth, w, q.Text)
		}
	}
}

func TestBankSections(t *testing.T) {
	bank := mustBank(t)
	sm := bank.BySection(SharedMemory)
	mp := bank.BySection(MessagePassing)
	if len(sm) != 8 || len(mp) != 8 {
		t.Fatalf("sections = %d/%d, want 8/8", len(sm), len(mp))
	}
}

func TestGenerateCohortShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	students := GenerateCohort(rng, CohortConfig{})
	if len(students) != CohortSize {
		t.Fatalf("cohort = %d", len(students))
	}
	s, d := 0, 0
	for _, st := range students {
		switch st.Group {
		case "S":
			s++
		case "D":
			d++
		default:
			t.Fatalf("student %d has group %q", st.ID, st.Group)
		}
	}
	if s != GroupSSize || d != GroupDSize {
		t.Fatalf("groups = %d/%d, want %d/%d", s, d, GroupSSize, GroupDSize)
	}
}

func TestCohortPrevalencesTrackTableIII(t *testing.T) {
	// Across many cohorts, each code's prevalence should approximate
	// PaperCount/16.
	rng := rand.New(rand.NewSource(4))
	const cohorts = 400
	counts := map[Code]int{}
	for i := 0; i < cohorts; i++ {
		for _, st := range GenerateCohort(rng, CohortConfig{}) {
			for c := range st.Has {
				counts[c]++
			}
		}
	}
	for _, mc := range Catalog {
		got := float64(counts[mc.Code]) / float64(cohorts*CohortSize)
		want := float64(mc.PaperCount) / float64(CohortSize)
		if got < want-0.08 || got > want+0.08 {
			t.Errorf("%s: prevalence %.3f, want ≈ %.3f", mc.Code, got, want)
		}
	}
}

func TestAnswerMisconceptionFlips(t *testing.T) {
	q := Question{ID: "X", Section: SharedMemory, Truth: true, FlippedBy: []Code{"S7"}}
	st := Student{Has: map[Code]bool{"S7": true}, BaseError: 0, Learning: 0.5}
	rng := rand.New(rand.NewSource(5))
	ans, code := st.Answer(q, 1, rng)
	if ans != false || code != "S7" {
		t.Fatalf("session-1 answer = %v, %s; want flipped by S7", ans, code)
	}
	// Without the misconception and zero noise, always correct.
	clean := Student{Has: map[Code]bool{}, BaseError: 0, Learning: 0.5}
	for i := 0; i < 50; i++ {
		ans, code := clean.Answer(q, 1, rng)
		if ans != true || code != "" {
			t.Fatalf("clean student answered %v/%s", ans, code)
		}
	}
}

func TestAnswerLearningReducesFlips(t *testing.T) {
	q := Question{ID: "X", Section: SharedMemory, Truth: true, FlippedBy: []Code{"S5"}}
	st := Student{Has: map[Code]bool{"S5": true}, BaseError: 0, Learning: 0.3}
	rng := rand.New(rand.NewSource(6))
	wrong1, wrong2 := 0, 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if ans, _ := st.Answer(q, 1, rng); ans != q.Truth {
			wrong1++
		}
		if ans, _ := st.Answer(q, 2, rng); ans != q.Truth {
			wrong2++
		}
	}
	if wrong1 != trials {
		t.Fatalf("session 1 should always apply the misconception: %d/%d", wrong1, trials)
	}
	frac := float64(wrong2) / float64(trials)
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("session 2 flip rate = %.3f, want ≈ 0.3", frac)
	}
}

func TestRunReproducesPaperShape(t *testing.T) {
	skipIfShort(t)
	// A single 16-student cohort is noisy (the paper's own p = 0.005 is one
	// draw); check the direction of every effect across several seeds and
	// require each to hold in a clear majority, with significance reached
	// in at least half.
	seeds := []int64{1, 7, 13, 42, 2013}
	type tally struct{ smLower, sessionUp, groupS, groupD, sig, domCodes int }
	var tl tally
	for _, seed := range seeds {
		res, err := Run(Config{Seed: seed, PermIters: 4000})
		if err != nil {
			t.Fatal(err)
		}
		if res.AllSM < res.AllMP {
			tl.smLower++
		}
		if res.Session2Mean > res.Session1Mean {
			tl.sessionUp++
		}
		if res.SessionP < 0.05 {
			tl.sig++
		}
		if res.GroupSSM < res.GroupSMP {
			tl.groupS++
		}
		if res.GroupDMP < res.GroupDSM {
			tl.groupD++
		}
		ok := true
		for _, code := range []Code{"S7", "S5", "M3"} {
			if res.Counts[code] == 0 {
				ok = false
			}
		}
		if ok {
			tl.domCodes++
		}
	}
	n := len(seeds)
	if tl.smLower < n-1 {
		t.Errorf("shared memory below message passing in only %d/%d seeds", tl.smLower, n)
	}
	if tl.sessionUp != n {
		t.Errorf("session improvement in only %d/%d seeds", tl.sessionUp, n)
	}
	if tl.sig < n/2 {
		t.Errorf("session effect significant in only %d/%d seeds", tl.sig, n)
	}
	if tl.groupS < n-1 || tl.groupD < n-1 {
		t.Errorf("within-group ordering held in %d/%d (S) and %d/%d (D) seeds", tl.groupS, n, tl.groupD, n)
	}
	if tl.domCodes < n-1 {
		t.Errorf("dominant misconceptions missing in %d/%d seeds", n-tl.domCodes, n)
	}
}

func TestRunDeterministicBySeed(t *testing.T) {
	skipIfShort(t)
	a, err := Run(Config{Seed: 7, PermIters: 500})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Seed: 7, PermIters: 500})
	if err != nil {
		t.Fatal(err)
	}
	if a.AllSM != b.AllSM || a.AllMP != b.AllMP || a.Session1Mean != b.Session1Mean {
		t.Fatalf("same seed diverged: %+v vs %+v", a.AllSM, b.AllSM)
	}
}

func TestTablesRender(t *testing.T) {
	skipIfShort(t)
	res, err := Run(Config{Seed: 1, PermIters: 500})
	if err != nil {
		t.Fatal(err)
	}
	t1 := Table1().String()
	if !strings.Contains(t1, "Uncertainty") {
		t.Fatalf("table 1 = %s", t1)
	}
	t2 := res.Table2().String()
	for _, want := range []string{"S (9 students)", "D (7 students)", "Session effect"} {
		if !strings.Contains(t2, want) {
			t.Fatalf("table 2 missing %q:\n%s", want, t2)
		}
	}
	t3 := res.Table3().String()
	for _, want := range []string{"S7", "M3", "#students (paper)"} {
		if !strings.Contains(t3, want) {
			t.Fatalf("table 3 missing %q:\n%s", want, t3)
		}
	}
	survey := res.SurveyReport()
	if !strings.Contains(survey, "shared memory section was harder") {
		t.Fatalf("survey = %s", survey)
	}
	qr := res.QuestionReport()
	if !strings.Contains(qr, "SM1") || !strings.Contains(qr, "MP8") {
		t.Fatalf("question report = %s", qr)
	}
	ia := res.ItemAnalysis().String()
	for _, want := range []string{"ITEM ANALYSIS", "SM3", "Targeted by", "S7", "/16"} {
		if !strings.Contains(ia, want) {
			t.Fatalf("item analysis missing %q:\n%s", want, ia)
		}
	}
}

func TestItemAnalysisCountsBounded(t *testing.T) {
	skipIfShort(t)
	res, err := Run(Config{Seed: 3, PermIters: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ItemCorrect) != len(res.Bank.Questions) {
		t.Fatalf("item coverage = %d, want %d", len(res.ItemCorrect), len(res.Bank.Questions))
	}
	for id, n := range res.ItemCorrect {
		if n < 0 || n > CohortSize {
			t.Fatalf("%s: correct = %d out of %d", id, n, CohortSize)
		}
	}
	// The S7-targeted item must be among the harder shared-memory items:
	// it cannot be answered perfectly by a cohort where S7 has 10/16
	// prevalence.
	if res.ItemCorrect["SM3"] == CohortSize {
		t.Fatal("SM3 answered perfectly despite S7's prevalence")
	}
}

func TestSurveyShape(t *testing.T) {
	skipIfShort(t)
	res, err := Run(Config{Seed: 2013, PermIters: 500})
	if err != nil {
		t.Fatal(err)
	}
	smHarder := 0
	for _, r := range res.Students {
		if r.PerceivedHarder == SharedMemory {
			smHarder++
		}
	}
	// The paper: 11 of 15 found shared memory harder. Require a majority.
	if smHarder <= len(res.Students)/2 {
		t.Errorf("only %d/%d perceived shared memory harder", smHarder, len(res.Students))
	}
}
