package study

import (
	"fmt"
	"math/rand"
	"strings"
)

// AssignmentSurvey is one per-assignment difficulty poll (the paper ran
// these after homeworks 2-3 and labs 2-3).
type AssignmentSurvey struct {
	Assignment string
	SMHarder   int
	MPHarder   int
	Equal      int
	NoResponse int
}

// Respondents returns how many students answered.
func (s AssignmentSurvey) Respondents() int { return s.SMHarder + s.MPHarder + s.Equal }

// SimulateCourseSurveys models the course-long difficulty polls: each
// student responds with some probability and votes according to their
// misconception load, with the systematic lean toward shared memory
// feeling harder that the paper reports throughout (homework 3: 10 SM
// harder vs 1 MP harder; labs: 8 vs 1 with 2 equal).
func SimulateCourseSurveys(rng *rand.Rand, students []Student) []AssignmentSurvey {
	assignments := []string{
		"homework 2+3 (pseudocode: bounded buffer, dining philosophers)",
		"labs 2+3 (book inventory design)",
	}
	var out []AssignmentSurvey
	for _, a := range assignments {
		sv := AssignmentSurvey{Assignment: a}
		for _, st := range students {
			if rng.Float64() > 0.8 { // some students skip the survey
				sv.NoResponse++
				continue
			}
			// Base lean: shared memory feels harder (the paper's consistent
			// finding); a heavy message-passing misconception load can
			// overcome it, equality is the fallback.
			pSM := 0.62 + 0.04*float64(st.MisconceptionLoad(SharedMemory)-st.MisconceptionLoad(MessagePassing))
			if pSM < 0.1 {
				pSM = 0.1
			}
			if pSM > 0.95 {
				pSM = 0.95
			}
			switch r := rng.Float64(); {
			case r < pSM:
				sv.SMHarder++
			case r < pSM+0.1:
				sv.MPHarder++
			default:
				sv.Equal++
			}
		}
		out = append(out, sv)
	}
	return out
}

// CourseSurveyReport renders the polls next to the paper's numbers.
func CourseSurveyReport(surveys []AssignmentSurvey) string {
	var b strings.Builder
	b.WriteString("Course-long difficulty polls (simulated):\n")
	paper := []string{
		"(paper: 10 shared-memory-harder, 1 message-passing-harder)",
		"(paper: 8 of 11 shared-memory-harder, 1 message-passing-harder, 2 equal)",
	}
	for i, s := range surveys {
		fmt.Fprintf(&b, "  %s:\n    %d shared memory harder, %d message passing harder, %d equal, %d no response %s\n",
			s.Assignment, s.SMHarder, s.MPHarder, s.Equal, s.NoResponse, paper[i%len(paper)])
	}
	return b.String()
}
