package study

import (
	"testing"

	"repro/internal/pseudocode"
)

// The production bank build uses POR + parallel workers; its ground truths
// must match a bank built with the plain sequential reference explorer
// bit for bit. This is the study-level counterpart of the explorer's
// equivalence sweep.
func TestFastBankMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("reference bank build explores the full message bridge")
	}
	ref, err := buildBank(pseudocode.ExploreOpts{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := buildBank(fastExploreOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Questions) != len(fast.Questions) {
		t.Fatalf("question counts differ: %d vs %d", len(ref.Questions), len(fast.Questions))
	}
	for i := range ref.Questions {
		r, f := ref.Questions[i], fast.Questions[i]
		if r.ID != f.ID || r.Truth != f.Truth {
			t.Errorf("question %s: reference truth %v, fast truth %v", r.ID, r.Truth, f.Truth)
		}
	}
}
