package study

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// Config controls a simulated study run.
type Config struct {
	Seed      int64
	PermIters int // permutation-test iterations (default 10000)
	Cohort    CohortConfig
}

// Record is one student's full Test-1 outcome.
type Record struct {
	Student
	SMScore, MPScore float64 // section scores out of 100
	Session1Score    float64
	Session2Score    float64
	WrongBy          map[Code]int // wrong answers attributed per code
	// Survey simulation.
	PerceivedHarder Section
	ChoseSection    Section // section picked to count as midterm grade
	ChoseCorrectly  bool    // picked their actually-higher section
}

// Result is the full simulated study.
type Result struct {
	Bank     *Bank
	Students []Record
	// Table II analogues.
	GroupSSM, GroupSMP float64 // group S means per section
	GroupDSM, GroupDMP float64
	AllSM, AllMP       float64
	Session1Mean       float64
	Session2Mean       float64
	SessionP           float64 // paired permutation p-value
	// Table III analogue: students exhibiting each misconception.
	Counts map[Code]int
	// ItemCorrect counts, per question ID, how many students answered
	// correctly (item analysis).
	ItemCorrect map[string]int
}

// Run simulates the study end to end: build the question bank (ground truth
// by exhaustive exploration), generate the cohort, administer both sessions
// in each group's order, grade, attribute misconceptions, and run the
// session-effect significance test.
func Run(cfg Config) (*Result, error) {
	bank, err := BuildBank()
	if err != nil {
		return nil, err
	}
	if cfg.PermIters <= 0 {
		cfg.PermIters = 10000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	students := GenerateCohort(rng, cfg.Cohort)

	res := &Result{Bank: bank, Counts: map[Code]int{}, ItemCorrect: map[string]int{}}
	var s1, s2 []float64
	for _, st := range students {
		rec := Record{Student: st, WrongBy: map[Code]int{}}
		firstSection := SharedMemory
		if st.Group == "D" {
			firstSection = MessagePassing
		}
		for session := 1; session <= 2; session++ {
			sec := firstSection
			if session == 2 {
				sec = otherSection(firstSection)
			}
			qs := bank.BySection(sec)
			correct := 0
			for _, q := range qs {
				ans, code := st.Answer(q, session, rng)
				if ans == q.Truth {
					correct++
					res.ItemCorrect[q.ID]++
				} else if code != "" {
					rec.WrongBy[code]++
				}
			}
			score := 100 * float64(correct) / float64(len(qs))
			if sec == SharedMemory {
				rec.SMScore = score
			} else {
				rec.MPScore = score
			}
			if session == 1 {
				rec.Session1Score = score
			} else {
				rec.Session2Score = score
			}
		}
		// Survey: perceived difficulty tracks the student's own section
		// scores, with the paper's documented bias toward shared memory
		// feeling harder (10/11 in homework surveys, 8/11 after labs, 11/15
		// after Test 1): shared memory must beat message passing by more
		// than one question's worth before a student calls it easier.
		const perceptionBias = 12.5 // one question out of eight
		if rec.SMScore-rec.MPScore < perceptionBias {
			rec.PerceivedHarder = SharedMemory
		} else {
			rec.PerceivedHarder = MessagePassing
		}
		better := SharedMemory
		if rec.MPScore > rec.SMScore {
			better = MessagePassing
		}
		if rng.Float64() < 0.87 {
			rec.ChoseSection = better
		} else {
			rec.ChoseSection = otherSection(better)
		}
		rec.ChoseCorrectly = sectionScore(rec, rec.ChoseSection) >= sectionScore(rec, otherSection(rec.ChoseSection))
		res.Students = append(res.Students, rec)
		s1 = append(s1, rec.Session1Score)
		s2 = append(s2, rec.Session2Score)
	}

	// Aggregate Table II.
	var sSM, sMP, dSM, dMP []float64
	for _, r := range res.Students {
		if r.Group == "S" {
			sSM = append(sSM, r.SMScore)
			sMP = append(sMP, r.MPScore)
		} else {
			dSM = append(dSM, r.SMScore)
			dMP = append(dMP, r.MPScore)
		}
	}
	res.GroupSSM = metrics.Mean(sSM)
	res.GroupSMP = metrics.Mean(sMP)
	res.GroupDSM = metrics.Mean(dSM)
	res.GroupDMP = metrics.Mean(dMP)
	res.AllSM = metrics.Mean(append(append([]float64{}, sSM...), dSM...))
	res.AllMP = metrics.Mean(append(append([]float64{}, sMP...), dMP...))
	res.Session1Mean = metrics.Mean(s1)
	res.Session2Mean = metrics.Mean(s2)
	p, err := metrics.PairedPermutationTest(s2, s1, cfg.PermIters, rng)
	if err != nil {
		return nil, err
	}
	res.SessionP = p

	// Table III: a student "shows" a misconception if it caused at least
	// one wrong answer.
	for _, r := range res.Students {
		for code, n := range r.WrongBy {
			if n > 0 {
				res.Counts[code]++
			}
		}
	}
	return res, nil
}

func otherSection(s Section) Section {
	if s == SharedMemory {
		return MessagePassing
	}
	return SharedMemory
}

func sectionScore(r Record, s Section) float64 {
	if s == SharedMemory {
		return r.SMScore
	}
	return r.MPScore
}

// Table1 renders the misconception hierarchy (paper Table I).
func Table1() *metrics.Table {
	t := metrics.NewTable("TABLE I. CONCURRENCY-RELATED MISCONCEPTIONS IN HIERARCHY",
		"Code", "Level", "Description")
	for _, l := range Hierarchy {
		t.AddRow(l.Code, l.Name, l.Description)
	}
	return t
}

// Table2 renders the Test-1 performance table (paper Table II).
func (r *Result) Table2() *metrics.Table {
	t := metrics.NewTable("TABLE II (simulated). PERFORMANCES ON TEST 1",
		"Group", "Shared Memory Mean", "Message Passing Mean", "Overall")
	t.AddRow(fmt.Sprintf("S (%d students)", GroupSSize),
		metrics.F(r.GroupSSM)+" (1st)", metrics.F(r.GroupSMP)+" (2nd)",
		metrics.F(r.GroupSSM+r.GroupSMP)+" / 200")
	t.AddRow(fmt.Sprintf("D (%d students)", GroupDSize),
		metrics.F(r.GroupDSM)+" (2nd)", metrics.F(r.GroupDMP)+" (1st)",
		metrics.F(r.GroupDSM+r.GroupDMP)+" / 200")
	t.AddRow("All", metrics.F(r.AllSM), metrics.F(r.AllMP), "")
	t.AddRowf("Session effect: 1st %.2f%%, 2nd %.2f%% (paired permutation p = %.4f)",
		r.Session1Mean, r.Session2Mean, r.SessionP)
	return t
}

// Table3 renders the misconception counts (paper Table III).
func (r *Result) Table3() *metrics.Table {
	t := metrics.NewTable("TABLE III (simulated). MISCONCEPTIONS SHOWN IN TEST 1",
		"Code", "Level", "Section", "#students (paper)", "#students (simulated)")
	codes := make([]Misconception, len(Catalog))
	copy(codes, Catalog)
	sort.SliceStable(codes, func(a, b int) bool { return codes[a].Code < codes[b].Code })
	for _, mc := range codes {
		t.AddRow(string(mc.Code), mc.Level, mc.Section.String(),
			metrics.I(mc.PaperCount), metrics.I(r.Counts[mc.Code]))
	}
	return t
}

// ItemAnalysis renders per-question difficulty: the fraction of the cohort
// answering each question correctly, with the misconceptions that target
// it. The hardest items are exactly those the dominant misconceptions
// (S7, S5, M3, M4) attack — the paper's qualitative finding.
func (r *Result) ItemAnalysis() *metrics.Table {
	t := metrics.NewTable("ITEM ANALYSIS (simulated): per-question correctness",
		"Question", "Section", "Truth", "Correct", "Targeted by")
	for _, q := range r.Bank.Questions {
		truth := "NO"
		if q.Truth {
			truth = "YES"
		}
		codes := make([]string, len(q.FlippedBy))
		for i, c := range q.FlippedBy {
			codes[i] = string(c)
		}
		target := strings.Join(codes, ",")
		if q.Complex {
			if target != "" {
				target += ","
			}
			target += "U1"
		}
		t.AddRow(q.ID, q.Section.String(), truth,
			fmt.Sprintf("%d/%d", r.ItemCorrect[q.ID], CohortSize), target)
	}
	return t
}

// SurveyReport summarizes the simulated survey findings (paper Section VI).
func (r *Result) SurveyReport() string {
	var b strings.Builder
	smHarder, mpHarder := 0, 0
	choseMP, choseSM, choseCorrect := 0, 0, 0
	smPickers2nd := 0
	for _, rec := range r.Students {
		if rec.PerceivedHarder == SharedMemory {
			smHarder++
		} else {
			mpHarder++
		}
		if rec.ChoseSection == MessagePassing {
			choseMP++
		} else {
			choseSM++
			if rec.Group == "D" { // D took shared memory in the 2nd session
				smPickers2nd++
			}
		}
		if rec.ChoseCorrectly {
			choseCorrect++
		}
	}
	fmt.Fprintf(&b, "Survey (simulated, n=%d):\n", len(r.Students))
	fmt.Fprintf(&b, "  %d of %d say the shared memory section was harder (paper: 11 of 15)\n",
		smHarder, len(r.Students))
	fmt.Fprintf(&b, "  %d chose the message passing section for their grade (paper: 10 of 15)\n", choseMP)
	fmt.Fprintf(&b, "  %d of %d chose the section they actually scored higher on (paper: 13 of 15)\n",
		choseCorrect, len(r.Students))
	fmt.Fprintf(&b, "  of the %d shared-memory pickers, %d took shared memory in the 2nd session (paper: 4 of 5)\n",
		choseSM, smPickers2nd)
	return b.String()
}

// QuestionReport lists the questions with their ground truths.
func (r *Result) QuestionReport() string {
	var b strings.Builder
	for _, q := range r.Bank.Questions {
		truth := "NO"
		if q.Truth {
			truth = "YES"
		}
		mark := ""
		if q.Complex {
			mark = " [complex]"
		}
		fmt.Fprintf(&b, "%-4s (%s)%s %s -> %s\n", q.ID, q.Section, mark, q.Text, truth)
	}
	return b.String()
}
