package study

import (
	"math/rand"
	"sort"
)

// Student is one simulated subject: a bundle of misconception codes plus
// noise/learning parameters.
type Student struct {
	ID    int
	Group string // "S" (shared-memory section first) or "D" (message passing first)
	// Has marks the misconceptions this student holds.
	Has map[Code]bool
	// BaseError is the session-1 probability of an unforced wrong answer.
	BaseError float64
	// Learning scales misconception application and noise in session 2
	// (the paper observed a 60.71% → 79.20% session effect, attributed to
	// learning during the exam and between sessions).
	Learning float64
}

// MisconceptionLoad counts held misconceptions in a section.
func (s *Student) MisconceptionLoad(sec Section) int {
	n := 0
	byCode := CatalogByCode()
	for c := range s.Has {
		if byCode[c].Section == sec {
			n++
		}
	}
	return n
}

// CohortConfig tunes cohort generation.
type CohortConfig struct {
	// BaseError is the unforced error probability (default 0.05).
	BaseError float64
	// Learning is the session-2 multiplier on misconception application
	// and noise (default 0.45).
	Learning float64
}

func (c CohortConfig) withDefaults() CohortConfig {
	if c.BaseError == 0 {
		c.BaseError = 0.05
	}
	if c.Learning == 0 {
		c.Learning = 0.45
	}
	return c
}

// GenerateCohort creates the paper's 16 subjects. Each misconception is
// assigned independently with probability PaperCount/16 — the prevalences
// of Table III. Students are then split into groups S (9) and D (7) with
// balanced misconception load, mirroring the paper's balanced-by-prior-
// performance grouping.
func GenerateCohort(rng *rand.Rand, cfg CohortConfig) []Student {
	cfg = cfg.withDefaults()
	students := make([]Student, CohortSize)
	for i := range students {
		students[i] = Student{
			ID:        i + 1,
			Has:       map[Code]bool{},
			BaseError: cfg.BaseError,
			Learning:  cfg.Learning,
		}
		for _, mc := range Catalog {
			if rng.Float64() < float64(mc.PaperCount)/float64(CohortSize) {
				students[i].Has[mc.Code] = true
			}
		}
	}
	// Balanced grouping: order by total misconception load, then deal
	// snake-wise into S and D until D has its 7.
	order := make([]int, CohortSize)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(students[order[a]].Has) > len(students[order[b]].Has)
	})
	dLeft := GroupDSize
	sLeft := GroupSSize
	for pos, idx := range order {
		pick := "S"
		if (pos%2 == 1 && dLeft > 0) || sLeft == 0 {
			pick = "D"
			dLeft--
		} else {
			sLeft--
		}
		students[idx].Group = pick
	}
	return students
}

// Answer simulates one student answering one question in the given session
// (1 or 2). It returns the given answer and, when the answer is wrong
// because of a held misconception, the code to attribute.
func (s *Student) Answer(q Question, session int, rng *rand.Rand) (answer bool, attributed Code) {
	apply := 1.0
	noise := s.BaseError
	if session == 2 {
		apply = s.Learning
		noise *= s.Learning
	}
	// A held misconception that targets this question flips the answer.
	for _, code := range q.FlippedBy {
		if s.Has[code] && rng.Float64() < apply {
			return !q.Truth, code
		}
	}
	// Uncertainty: on large-state-space questions, students holding the
	// section's U1 code guess (the paper: "when students are not quite able
	// to manage the execution space ... they tend to reduce the complexity
	// by falling back into one of the lower level misconceptions").
	if q.Complex {
		uCode := Code("S8")
		if q.Section == MessagePassing {
			uCode = "M6"
		}
		if s.Has[uCode] && rng.Float64() < 0.5*apply {
			guess := rng.Intn(2) == 0
			if guess != q.Truth {
				return guess, uCode
			}
			return guess, ""
		}
	}
	// Unforced noise.
	if rng.Float64() < noise {
		return !q.Truth, ""
	}
	return q.Truth, ""
}
