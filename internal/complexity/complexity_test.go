package complexity

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func writeFixture(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeDirCounts(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "x.go", `package x

func RunThreads() {
	m.Enter()
	if x > 0 {
		m.Wait("c")
	}
	for i := 0; i < 3; i++ {
		go worker()
	}
	m.Exit()
}

func RunActors() {
	ref := sys.MustSpawn("a", nil)
	ref.Tell(1)
	ctx.Reply(2)
}

func RunCoroutines() {
	s.Go("t", nil)
	tc.Pause()
}
`)
	funcs, err := AnalyzeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	th := funcs["RunThreads"]
	if th.SyncCalls != 3 { // Enter, Wait, Exit
		t.Fatalf("threads sync = %d, want 3", th.SyncCalls)
	}
	if th.Branches != 2 { // if + for
		t.Fatalf("threads branches = %d", th.Branches)
	}
	if th.Spawns != 1 { // go stmt
		t.Fatalf("threads spawns = %d", th.Spawns)
	}
	ac := funcs["RunActors"]
	if ac.SyncCalls != 2 || ac.Spawns != 1 { // Tell+Reply; MustSpawn
		t.Fatalf("actors = %+v", ac)
	}
	co := funcs["RunCoroutines"]
	if co.SyncCalls != 1 || co.Spawns != 1 { // Pause; Go
		t.Fatalf("coroutines = %+v", co)
	}
	if th.Lines <= 0 {
		t.Fatalf("lines = %d", th.Lines)
	}
}

func TestAnalyzeDirSkipsTests(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "a.go", "package x\nfunc A() {}\n")
	writeFixture(t, dir, "a_test.go", "package x\nfunc TestA() { m.Enter() }\n")
	funcs, err := AnalyzeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := funcs["TestA"]; ok {
		t.Fatal("test files should be skipped")
	}
	if _, ok := funcs["A"]; !ok {
		t.Fatal("A missing")
	}
}

func TestAnalyzeDirBadSource(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "bad.go", "this is not go")
	if _, err := AnalyzeDir(dir); err == nil {
		t.Fatal("parse error should surface")
	}
}

func TestMetricsAdd(t *testing.T) {
	a := Metrics{Lines: 1, Branches: 2, SyncCalls: 3, Spawns: 4}
	a.Add(Metrics{Lines: 10, Branches: 20, SyncCalls: 30, Spawns: 40})
	if a != (Metrics{Lines: 11, Branches: 22, SyncCalls: 33, Spawns: 44}) {
		t.Fatalf("Add = %+v", a)
	}
}

// TestAnalyzeRealProblems runs the analyzer over this repository's actual
// problem packages — the real Test-2 artifact.
func TestAnalyzeRealProblems(t *testing.T) {
	root := filepath.Join("..", "problems")
	reports, err := AnalyzeAllProblems(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 9 {
		t.Fatalf("found %d problem packages, want 9", len(reports))
	}
	for _, rep := range reports {
		for _, m := range core.AllModels {
			met, ok := rep.PerModel[m]
			if !ok {
				t.Fatalf("%s: missing %s", rep.Problem, m)
			}
			if met.Lines < 5 {
				t.Fatalf("%s/%s: implausible line count %d", rep.Problem, m, met.Lines)
			}
		}
		// Every threads implementation uses explicit synchronization (the
		// cooperative ones may use only WaitUntil/Pause which also count).
		if rep.PerModel[core.Threads].SyncCalls == 0 {
			t.Fatalf("%s: threads version has no sync calls?", rep.Problem)
		}
	}
}

func TestAnalyzeProblemMissingEntryPoints(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "x.go", "package x\nfunc OnlyThis() {}\n")
	if _, err := AnalyzeProblem(dir); err == nil {
		t.Fatal("missing Run* functions should error")
	}
}
