// Package complexity measures the "ease of programming" axis of the
// paper's Test 2: students implement the same problem in three forms and
// the course compares "the costs and benefits, including performance and
// the ease of programming". Runtime cost comes from the benchmark harness;
// this package supplies the program-text cost: lines of code, branching,
// synchronization operations, and task spawns per model implementation,
// computed from the Go AST of the problem packages.
package complexity

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/core"
)

// Metrics summarizes one model implementation's source.
type Metrics struct {
	Lines     int // source lines of the function body
	Branches  int // if / for / range / switch / select statements
	SyncCalls int // synchronization-primitive calls (see syncNames)
	Spawns    int // goroutines, actor spawns, scheduler tasks
}

// Add accumulates o into m.
func (m *Metrics) Add(o Metrics) {
	m.Lines += o.Lines
	m.Branches += o.Branches
	m.SyncCalls += o.SyncCalls
	m.Spawns += o.Spawns
}

// syncNames are method/function names counted as explicit synchronization
// operations, across all three substrates.
var syncNames = map[string]bool{
	// threads
	"Enter": true, "Exit": true, "EnterAs": true, "TryEnter": true,
	"Wait": true, "Notify": true, "NotifyAll": true, "WaitUntil": true,
	"Lock": true, "Unlock": true, "RLock": true, "RUnlock": true,
	"Acquire": true, "Release": true, "TryAcquire": true, "Await": true,
	"Submit": true, "Drain": true, "Shutdown": true,
	// actors
	"Tell": true, "TellFrom": true, "Send": true, "Reply": true, "Ask": true,
	// coroutines
	"Yield": true, "Resume": true, "Transfer": true, "Pause": true,
}

// spawnNames are calls counted as task creation.
var spawnNames = map[string]bool{
	"Spawn": true, "MustSpawn": true, "Go": true, "NewPool": true,
}

// modelFuncs maps each model to its conventional entry point in the
// problem packages.
var modelFuncs = map[core.Model]string{
	core.Threads:    "RunThreads",
	core.Actors:     "RunActors",
	core.Coroutines: "RunCoroutines",
}

// AnalyzeDir parses every non-test Go file in dir and returns metrics per
// top-level function name.
func AnalyzeDir(dir string) (map[string]Metrics, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	out := map[string]Metrics{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return nil, fmt.Errorf("complexity: %s: %w", path, err)
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			out[fn.Name.Name] = analyzeFunc(fset, fn)
		}
	}
	return out, nil
}

func analyzeFunc(fset *token.FileSet, fn *ast.FuncDecl) Metrics {
	m := Metrics{
		Lines: fset.Position(fn.Body.End()).Line - fset.Position(fn.Body.Pos()).Line + 1,
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
			*ast.TypeSwitchStmt, *ast.SelectStmt:
			m.Branches++
		case *ast.GoStmt:
			m.Spawns++
		case *ast.CallExpr:
			name := calleeName(x)
			if syncNames[name] {
				m.SyncCalls++
			}
			if spawnNames[name] {
				m.Spawns++
			}
		}
		return true
	})
	return m
}

func calleeName(c *ast.CallExpr) string {
	switch f := c.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// ProblemReport is the Test-2 style comparison for one problem.
type ProblemReport struct {
	Problem  string
	PerModel map[core.Model]Metrics
}

// AnalyzeProblem computes per-model metrics for one problem package
// directory. The entry function and every helper it is the sole model to
// use are attributed to that model; shared helpers (validators, workload
// generators) are excluded, since students write those once.
func AnalyzeProblem(dir string) (*ProblemReport, error) {
	funcs, err := AnalyzeDir(dir)
	if err != nil {
		return nil, err
	}
	rep := &ProblemReport{Problem: filepath.Base(dir), PerModel: map[core.Model]Metrics{}}
	for model, fname := range modelFuncs {
		m, ok := funcs[fname]
		if !ok {
			return nil, fmt.Errorf("complexity: %s has no %s", dir, fname)
		}
		rep.PerModel[model] = m
	}
	return rep, nil
}

// AnalyzeAllProblems walks root (the internal/problems directory) and
// reports every problem package, sorted by name.
func AnalyzeAllProblems(root string) ([]*ProblemReport, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var out []*ProblemReport
	for _, e := range entries {
		if !e.IsDir() || e.Name() == "registry" {
			continue
		}
		rep, err := AnalyzeProblem(filepath.Join(root, e.Name()))
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Problem < out[b].Problem })
	return out, nil
}
