// Package detect turns the vector-clock trace layer into online
// concurrency-bug detectors for the actor-bug taxonomy of "A Study of
// Concurrency Bugs and Advanced Development Support for Actor-based
// Programs" (arXiv 1706.07372, see PAPERS.md):
//
//   - message-order races: two sends to one mailbox that are causally
//     concurrent, whose delivery order changed an observable metric
//     (cross-run confirmation via ConfirmOrderRaces);
//   - stale-behavior interleavings: a message dispatched to a handler
//     generation older than a Become the sender causally observed
//     (supervised-restart rollback), or processed by the pre-Become
//     handler while racing the message that triggered the Become;
//   - orphaned protocols: asks/acks that end in deadletters
//     (norecipient/dead/overloaded) with no later retry to the same
//     destination.
//
// A Suite attaches to a trace.Recorder (full vector-clock mode; the flight
// recorder carries no clocks and cannot drive these detectors) and consumes
// events online through the Recorder.OnEvent tap. Findings are intended to
// be zero on every correct program — the conformance sweep in
// internal/problems asserts exactly that across the whole problem registry.
package detect

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/trace"
)

// Category names one detector.
type Category string

const (
	// OrderRace: causally-concurrent sends to one mailbox whose delivery
	// order changed an observable metric. Single runs yield candidates
	// (Candidates); findings of this category come from ConfirmOrderRaces
	// over runs that differ only in scheduling.
	OrderRace Category = "message-order-race"
	// StaleBehavior: a message dispatched to a behavior generation that is
	// older than a Become its sender causally observed, or processed by the
	// pre-Become handler while racing the Become's trigger message.
	StaleBehavior Category = "stale-behavior"
	// OrphanedProtocol: a non-control message deadlettered as
	// norecipient/dead/overloaded with no later send of the same payload
	// type to a same-named destination (no retry).
	OrphanedProtocol Category = "orphaned-protocol"
)

// Finding is one detector hit.
type Finding struct {
	Category Category
	// Actor is the mailbox/actor the finding is about (destination ref or
	// name, depending on the detector).
	Actor string
	// Summary is a one-line human-readable description.
	Summary string
	// Evidence holds the trace events that witnessed the finding.
	Evidence []trace.Event
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s] %s: %s", f.Category, f.Actor, f.Summary)
}

// maxRecentSends bounds the per-mailbox window scanned for concurrent send
// pairs, and maxRecentRecvs the per-actor receive lookback at a Become.
const (
	maxRecentSends = 16
	maxRecentRecvs = 64
)

// recvRec pairs a receive event with the send event it matched (nil when
// the send was not traced, e.g. a message injected from outside).
type recvRec struct {
	recv trace.Event
	send *trace.Event
}

// becomeRec is one recorded behavior swap with its generation number.
type becomeRec struct {
	ev  trace.Event
	gen int
}

// actorState is the per-destination bookkeeping shared by the detectors.
type actorState struct {
	gen      int         // current behavior generation (Becomes since last restart)
	becomes  []becomeRec // all Become events observed for this actor
	recent   []recvRec   // receives since the last Become (bounded)
	lastRecv *recvRec    // most recent receive (the Become trigger, if one follows)
	sends    []trace.Event
	// pending is a provisional stale-dispatch finding awaiting the actor's
	// next event: if that event is a Become restoring generation pendingGen
	// (or beyond), the flagged message itself performed the recovery
	// handshake and the finding is dropped. See resolvePending.
	pending    *Finding
	pendingGen int
}

// OrderCandidate is a pair of causally-concurrent sends to one mailbox,
// with the delivery order observed in this run. Candidates are not
// findings: a correct multi-producer program has them constantly. They
// become findings only when ConfirmOrderRaces sees two runs that delivered
// the same pair in opposite orders with different observable metrics.
type OrderCandidate struct {
	Mailbox string      // destination ref, e.g. "actor(buffer#3)"
	Key     string      // schedule-independent pair identity (sender+type of both sides)
	A, B    trace.Event // the two send events, in canonical Key order
	// delivery indices (global receive counter), -1 while undelivered
	recvA, recvB int
}

// Delivered reports the observed delivery order: "ab", "ba", or "" if
// either message was never received.
func (c *OrderCandidate) Delivered() string {
	switch {
	case c.recvA < 0 || c.recvB < 0:
		return ""
	case c.recvA < c.recvB:
		return "ab"
	default:
		return "ba"
	}
}

// Suite is the online detector state machine. Feed it every event of a
// clocked trace (Attach does this via the recorder tap); query Findings
// and Candidates after the run has quiesced. A Suite is safe for
// concurrent use.
type Suite struct {
	mu sync.Mutex

	// pending send events keyed by message ID, consumed by the matching
	// receive.
	sends map[string]trace.Event

	actors map[string]*actorState // keyed by destination ref string

	// candidate order races: key → candidate; watched maps a message ID to
	// the candidate slots its delivery resolves, and recvIdx remembers the
	// global delivery index of every receive so a candidate identified
	// after one side was already delivered can still be resolved.
	cands   map[string]*OrderCandidate
	watched map[string][]*candSlot
	recvIdx map[string]int
	recvSeq int

	// pending orphans: (destination name, payload type) → latest deadletter.
	orphans map[orphanKey]trace.Event

	// quiesced flips when the system's shutdown marker arrives; deadletters
	// after it are teardown noise (late sends into a deliberately stopping
	// system), not orphaned protocols.
	quiesced bool

	findings []Finding
	seen     map[string]bool // finding dedup
}

type candSlot struct {
	c     *OrderCandidate
	slotA bool
}

type orphanKey struct {
	dest    string // destination *name* (not ref: a respawn changes the id)
	msgType string
}

// New returns an empty detector suite.
func New() *Suite {
	return &Suite{
		sends:   make(map[string]trace.Event),
		actors:  make(map[string]*actorState),
		cands:   make(map[string]*OrderCandidate),
		watched: make(map[string][]*candSlot),
		recvIdx: make(map[string]int),
		orphans: make(map[orphanKey]trace.Event),
		seen:    make(map[string]bool),
	}
}

// Attach subscribes the suite to every event r records from now on. The
// recorder must be a clocked one (NewRecorder/NewRecorderCap): flight
// events carry no vector clocks, so the causality queries degrade to
// "equal" and the detectors stay silent.
func (s *Suite) Attach(r *trace.Recorder) { r.OnEvent(s.Feed) }

// Analyze runs a recorded event sequence (in Seq order) through a fresh
// suite — the offline entry point.
func Analyze(events []trace.Event) *Suite {
	s := New()
	for _, ev := range events {
		s.Feed(ev)
	}
	return s
}

// Feed consumes one trace event. Events must arrive in Seq order (the
// recorder tap guarantees this).
func (s *Suite) Feed(ev trace.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.actors[ev.Task]; ok && st.pending != nil {
		s.resolvePending(st, ev)
	}
	switch ev.Kind {
	case trace.KindSend:
		s.onSend(ev)
	case trace.KindReceive:
		s.onReceive(ev)
	case trace.KindBecome:
		s.onBecome(ev)
	case trace.KindRestart:
		s.state(ev.Task).gen = 0
	case trace.KindDeadLetter:
		s.onDeadLetter(ev)
	case trace.KindExit:
		if ev.Task == "system" && ev.Object == "shutdown" {
			s.quiesced = true
		}
	}
}

func (s *Suite) state(ref string) *actorState {
	st, ok := s.actors[ref]
	if !ok {
		st = &actorState{}
		s.actors[ref] = st
	}
	return st
}

func (s *Suite) addFinding(f Finding) {
	key := string(f.Category) + "|" + f.Actor + "|" + f.Summary
	if s.seen[key] {
		return
	}
	s.seen[key] = true
	s.findings = append(s.findings, f)
}

// --- message-order race candidates -----------------------------------------

// sendKey is the schedule-independent identity of one side of a candidate
// pair: who sent what.
func sendKey(ev trace.Event) string { return ev.Task + "→" + ev.Detail }

func (s *Suite) onSend(ev trace.Event) {
	dest := destOfMsgID(ev.Object)
	// A send is also the retry that un-orphans an earlier deadletter to the
	// same-named destination.
	delete(s.orphans, orphanKey{dest: nameOfRef(dest), msgType: ev.Detail})

	st := s.state(dest)
	for i := range st.sends {
		prev := &st.sends[i]
		if prev.Task == ev.Task {
			continue // same sender: per-sender FIFO orders them
		}
		if !trace.ConcurrentEvents(*prev, ev) {
			continue
		}
		a, b := *prev, ev
		ka, kb := sendKey(a), sendKey(b)
		if ka > kb {
			a, b = b, a
			ka, kb = kb, ka
		}
		key := dest + "|" + ka + "|" + kb
		if _, dup := s.cands[key]; dup {
			continue
		}
		c := &OrderCandidate{Mailbox: dest, Key: key, A: a, B: b, recvA: -1, recvB: -1}
		s.cands[key] = c
		// One side may already have been delivered (a pair only becomes a
		// candidate at its second send); backfill from the receive index.
		if idx, ok := s.recvIdx[a.Object]; ok {
			c.recvA = idx
		} else {
			s.watched[a.Object] = append(s.watched[a.Object], &candSlot{c: c, slotA: true})
		}
		if idx, ok := s.recvIdx[b.Object]; ok {
			c.recvB = idx
		} else {
			s.watched[b.Object] = append(s.watched[b.Object], &candSlot{c: c, slotA: false})
		}
	}
	st.sends = append(st.sends, ev)
	if len(st.sends) > maxRecentSends {
		st.sends = st.sends[1:]
	}
	// Remembered until the matching receive consumes it. A message that
	// never arrives (deadlettered after the send was recorded) keeps its
	// entry for the rest of the run — bounded by the trace itself.
	s.sends[ev.Object] = ev
}

// --- receive: order bookkeeping + stale-dispatch check ----------------------

func (s *Suite) onReceive(ev trace.Event) {
	s.recvSeq++
	s.recvIdx[ev.Object] = s.recvSeq
	if slots := s.watched[ev.Object]; slots != nil {
		for _, sl := range slots {
			if sl.slotA {
				sl.c.recvA = s.recvSeq
			} else {
				sl.c.recvB = s.recvSeq
			}
		}
		delete(s.watched, ev.Object)
	}

	var send *trace.Event
	if sv, ok := s.sends[ev.Object]; ok {
		send = &sv
		delete(s.sends, ev.Object)
	}

	st := s.state(ev.Task)
	rec := recvRec{recv: ev, send: send}
	st.recent = append(st.recent, rec)
	if len(st.recent) > maxRecentRecvs {
		st.recent = st.recent[1:]
	}
	st.lastRecv = &st.recent[len(st.recent)-1]

	// Stale dispatch: the sender causally observed a Become this dispatch
	// generation predates — possible only after a supervised restart rolled
	// the behavior back to its factory default.
	if send == nil {
		return
	}
	expected, witness := 0, trace.Event{}
	for _, b := range st.becomes {
		if b.gen > expected && trace.HappenedBefore(b.ev, *send) {
			expected, witness = b.gen, b.ev
		}
	}
	if st.gen < expected {
		// Provisional: if this very message's processing performs the Become
		// that restores the expected generation, it *is* the recovery
		// handshake (a re-upgrade after a restart), not a bug. Settled at the
		// actor's next event, or at Findings() if none follows.
		st.pending = &Finding{
			Category: StaleBehavior,
			Actor:    ev.Task,
			Summary: fmt.Sprintf("message %s from %s dispatched at behavior generation %d, but its sender causally observed generation %d (restart rolled the behavior back)",
				send.Detail, send.Task, st.gen, expected),
			Evidence: []trace.Event{*send, ev, witness},
		}
		st.pendingGen = expected
	}
}

// resolvePending settles a provisional stale-dispatch finding at the actor's
// next trace event. A Become reaching the generation the sender observed
// means the flagged message restored the behavior itself; anything else
// (another receive, a send from the handler, a restart) means the message
// really ran on the rolled-back behavior.
func (s *Suite) resolvePending(st *actorState, ev trace.Event) {
	if ev.Kind == trace.KindBecome {
		gen := st.gen + 1
		fmt.Sscanf(ev.Object, "gen=%d", &gen)
		if gen >= st.pendingGen {
			st.pending, st.pendingGen = nil, 0
			return
		}
	}
	s.addFinding(*st.pending)
	st.pending, st.pendingGen = nil, 0
}

// --- become: generation tracking + racing-trigger check ---------------------

func (s *Suite) onBecome(ev trace.Event) {
	st := s.state(ev.Task)
	gen := st.gen + 1
	if n, err := fmt.Sscanf(ev.Object, "gen=%d", &gen); n != 1 || err != nil {
		gen = st.gen + 1
	}
	// The message being processed when the actor swapped behavior is the
	// Become's trigger. Earlier same-generation receives whose sends race
	// the trigger's send were order-dependent: in another schedule they
	// would have been handled by the new behavior.
	if st.lastRecv != nil && st.lastRecv.send != nil {
		trigger := st.lastRecv.send
		for i := range st.recent[:len(st.recent)-1] {
			r := &st.recent[i]
			if r.send == nil || r.send.Task == trigger.Task {
				continue
			}
			if trace.ConcurrentEvents(*r.send, *trigger) {
				s.addFinding(Finding{
					Category: StaleBehavior,
					Actor:    ev.Task,
					Summary: fmt.Sprintf("message %s from %s was handled by the pre-Become behavior (gen %d) while racing the Become trigger %s from %s",
						r.send.Detail, r.send.Task, st.gen, trigger.Detail, trigger.Task),
					Evidence: []trace.Event{*r.send, r.recv, *trigger, ev},
				})
			}
		}
	}
	st.gen = gen
	st.becomes = append(st.becomes, becomeRec{ev: ev, gen: gen})
	st.recent = st.recent[:0]
	st.lastRecv = nil
}

// --- orphaned protocols -----------------------------------------------------

// orphanKinds are the deadletter kinds the detector tracks (the transient/
// shutdown kinds — closed, dropped, remote — are excluded: close-time
// drains and injected drops are expected losses, and remote deadletters are
// the link layer's transient signal that AskRetry handles).
var orphanKinds = map[string]bool{"norecipient": true, "dead": true, "overloaded": true}

// cutTraceTag splits an optional trailing " trace=<16 hex>" tag off a
// deadletter Detail (stamped by the actors runtime when the envelope carried
// a distributed-trace span). It must be suffix detection, not field
// splitting: the message-type portion of the Detail is a Go %T and can
// itself contain spaces (anonymous struct types do).
func cutTraceTag(detail string) (rest, traceID string) {
	const tag = " trace="
	i := strings.LastIndex(detail, tag)
	if i < 0 {
		return detail, ""
	}
	id := detail[i+len(tag):]
	if len(id) != 16 {
		return detail, ""
	}
	for _, c := range id {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return detail, ""
		}
	}
	return detail[:i], id
}

func (s *Suite) onDeadLetter(ev trace.Event) {
	if s.quiesced {
		return // teardown noise: the system is deliberately winding down
	}
	// Strip the trace stamp before parsing: the orphan identity (and the
	// retry match against later sends, whose Detail is the bare %T) must not
	// depend on which trace happened to be sampled.
	detail, _ := cutTraceTag(ev.Detail)
	kind, msgType, ok := strings.Cut(detail, " ")
	if !ok || !orphanKinds[kind] {
		return
	}
	// The failed attempt supersedes any earlier orphan with the same
	// identity: the earlier one *was* retried (the retry just failed too),
	// and this attempt is now the one waiting for a retry.
	s.orphans[orphanKey{dest: nameOfRef(ev.Object), msgType: msgType}] = ev
}

// --- results ----------------------------------------------------------------

// Findings returns the confirmed findings so far (stale-behavior and
// orphaned-protocol; order races need cross-run confirmation, see
// Candidates/ConfirmOrderRaces), in a deterministic order. Call after the
// traced run has quiesced: an orphan is only an orphan because no retry
// followed it.
func (s *Suite) Findings() []Finding {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Finding, 0, len(s.findings)+len(s.orphans))
	out = append(out, s.findings...)
	// Unsettled provisional stale dispatches: no later event performed the
	// recovery Become, so they stand.
	for _, st := range s.actors {
		if st.pending != nil {
			out = append(out, *st.pending)
		}
	}
	for k, ev := range s.orphans {
		detail, traceID := cutTraceTag(ev.Detail)
		summary := fmt.Sprintf("message %s from %s deadlettered (%s) with no later retry to %q",
			k.msgType, ev.Task, strings.Fields(detail)[0], k.dest)
		if traceID != "" {
			// The envelope carried a sampled distributed-trace span; name it
			// so the finding links to the exact trace that died (visible in
			// /debug/trace and the loadgen -trace report).
			summary += " (trace " + traceID + ")"
		}
		out = append(out, Finding{
			Category: OrphanedProtocol,
			Actor:    k.dest,
			Summary:  summary,
			Evidence: []trace.Event{ev},
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Category != out[j].Category {
			return out[i].Category < out[j].Category
		}
		if out[i].Actor != out[j].Actor {
			return out[i].Actor < out[j].Actor
		}
		return out[i].Summary < out[j].Summary
	})
	return out
}

// Candidates returns this run's causally-concurrent send pairs with their
// observed delivery orders, sorted by Key.
func (s *Suite) Candidates() []OrderCandidate {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]OrderCandidate, 0, len(s.cands))
	for _, c := range s.cands {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Run is one execution's evidence for cross-run order-race confirmation:
// the candidates its suite collected plus a canonical rendering of the
// observable outcome (schedule-independent for a correct program).
type Run struct {
	Candidates []OrderCandidate
	Metric     string
}

// ConfirmOrderRaces upgrades candidates to findings: a pair delivered in
// opposite orders by two runs whose observable metrics differ is a
// message-order race — the program's outcome depended on the delivery
// order of causally-unordered sends. The runs must differ only in
// scheduling (same workload, same inputs), otherwise a metric difference
// says nothing about delivery order.
func ConfirmOrderRaces(runs []Run) []Finding {
	type obs struct {
		order  string
		metric string
		cand   OrderCandidate
	}
	byKey := make(map[string][]obs)
	for _, r := range runs {
		for _, c := range r.Candidates {
			if d := c.Delivered(); d != "" {
				byKey[c.Key] = append(byKey[c.Key], obs{order: d, metric: r.Metric, cand: c})
			}
		}
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var findings []Finding
	for _, k := range keys {
		seen := byKey[k]
		for i := 0; i < len(seen); i++ {
			for j := i + 1; j < len(seen); j++ {
				if seen[i].order != seen[j].order && seen[i].metric != seen[j].metric {
					c := seen[i].cand
					findings = append(findings, Finding{
						Category: OrderRace,
						Actor:    c.Mailbox,
						Summary: fmt.Sprintf("concurrent sends %s and %s to %s delivered in both orders across runs, with different observable outcomes (%q vs %q)",
							sendKey(c.A), sendKey(c.B), c.Mailbox, seen[i].metric, seen[j].metric),
						Evidence: []trace.Event{c.A, c.B},
					})
					i, j = len(seen), len(seen) // one finding per pair identity
				}
			}
		}
	}
	return findings
}

// --- trace-string helpers ---------------------------------------------------

// destOfMsgID extracts the destination ref from a traced message ID
// ("actor(name#id)#seq" → "actor(name#id)").
func destOfMsgID(msgID string) string {
	if i := strings.LastIndex(msgID, "#"); i >= 0 {
		return msgID[:i]
	}
	return msgID
}

// nameOfRef extracts the actor name from a ref string
// ("actor(name#id)" → "name"). Respawned actors keep their name but get a
// fresh id, which is why orphan retries match on the name.
func nameOfRef(ref string) string {
	s := ref
	if strings.HasPrefix(s, "actor(") && strings.HasSuffix(s, ")") {
		s = s[len("actor(") : len(s)-1]
	}
	if i := strings.LastIndex(s, "#"); i >= 0 {
		s = s[:i]
	}
	return s
}
