package detect

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/actors"
	"repro/internal/trace"
)

// Every detector ships a witness pair: the buggy rendition fires, the
// fixed one is silent. The scenarios live in scenarios.go so internal/bugs
// can mount them in the gallery as DetectorWitness entries.

func TestOrderRaceWitnessPair(t *testing.T) {
	// Buggy: the two acks are causally concurrent; driving the workers in
	// opposite orders across two runs delivers the pair both ways with
	// different outputs — a confirmed order race.
	var buggy []Run
	for _, first := range []int{1, 2} {
		r, err := RunOrderRaceScenario(first, false)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Candidates) == 0 {
			t.Fatalf("drive order %d: no concurrent-send candidates (want the ack pair)", first)
		}
		buggy = append(buggy, r)
	}
	confirmed := ConfirmOrderRaces(buggy)
	if len(confirmed) == 0 {
		t.Fatalf("order-race detector silent on the buggy scenario\nrun0 metric %q, run1 metric %q\ncandidates: %+v",
			buggy[0].Metric, buggy[1].Metric, buggy[0].Candidates)
	}
	t.Logf("fired: %v", confirmed[0])

	// Fixed: worker one triggers worker two causally; the acks are ordered,
	// so there is no concurrent ack candidate and nothing to confirm.
	var fixed []Run
	for range []int{0, 1} {
		r, err := RunOrderRaceScenario(1, true)
		if err != nil {
			t.Fatal(err)
		}
		if r.Metric != "first second " {
			t.Fatalf("fixed run metric %q, want %q", r.Metric, "first second ")
		}
		fixed = append(fixed, r)
	}
	if confirmed := ConfirmOrderRaces(fixed); len(confirmed) != 0 {
		t.Fatalf("order-race detector fired on the fixed scenario: %v", confirmed)
	}
}

func TestStaleBehaviorRestartWitnessPair(t *testing.T) {
	findings, version, err := RunStaleRestartScenario(false)
	if err != nil {
		t.Fatal(err)
	}
	if version != "v0" {
		t.Fatalf("buggy scenario served by %s, want the stale v0", version)
	}
	if len(findings) == 0 {
		t.Fatalf("stale-behavior detector silent on the restart-rollback scenario")
	}
	t.Logf("fired: %v", findings[0])

	findings, version, err = RunStaleRestartScenario(true)
	if err != nil {
		t.Fatal(err)
	}
	if version != "v1" {
		t.Fatalf("fixed scenario served by %s, want v1", version)
	}
	if len(findings) != 0 {
		t.Fatalf("stale-behavior detector fired on the fixed scenario: %v", findings)
	}
}

func TestStaleBehaviorRacingTriggerWitnessPair(t *testing.T) {
	findings, err := RunStaleRaceScenario(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatalf("stale-behavior detector silent on the racing-trigger scenario")
	}
	t.Logf("fired: %v", findings[0])

	findings, err = RunStaleRaceScenario(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("stale-behavior detector fired on the fixed scenario: %v", findings)
	}
}

func TestOrphanWitnessPair(t *testing.T) {
	findings, err := RunOrphanScenario(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatalf("orphan detector silent on the abandoned-request scenario")
	}
	t.Logf("fired: %v", findings[0])

	findings, err = RunOrphanScenario(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("orphan detector fired on the retried scenario: %v", findings)
	}
}

// --- unit coverage ----------------------------------------------------------

func TestTraceStringHelpers(t *testing.T) {
	if got := destOfMsgID("actor(bridge#3)#41"); got != "actor(bridge#3)" {
		t.Fatalf("destOfMsgID = %q", got)
	}
	if got := nameOfRef("actor(ask-reply#12)"); got != "ask-reply" {
		t.Fatalf("nameOfRef = %q", got)
	}
	if got := nameOfRef("weird"); got != "weird" {
		t.Fatalf("nameOfRef passthrough = %q", got)
	}
}

func TestAnalyzeOffline(t *testing.T) {
	rec := trace.NewRecorder()
	sys := actors.NewSystem(actors.Config{Recorder: rec})
	svc := sys.MustSpawn("svc", func(ctx *actors.Context, msg any) {})
	sys.Stop(svc)
	sys.Await(svc)
	svc.Tell("late") // deadletters as dead, never retried
	sys.Shutdown()
	suite := Analyze(rec.Events())
	if found := FilterCategory(suite.Findings(), OrphanedProtocol); len(found) == 0 {
		t.Fatalf("offline Analyze missed the orphaned deadletter:\n%s", rec.String())
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Category: OrphanedProtocol, Actor: "svc", Summary: "x"}
	if s := f.String(); s != fmt.Sprintf("[%s] svc: x", OrphanedProtocol) {
		t.Fatalf("String = %q", s)
	}
}

func TestCandidateDeliveredOrders(t *testing.T) {
	c := OrderCandidate{recvA: -1, recvB: -1}
	if c.Delivered() != "" {
		t.Fatalf("undelivered pair reported %q", c.Delivered())
	}
	c.recvA, c.recvB = 1, 2
	if c.Delivered() != "ab" {
		t.Fatalf("Delivered = %q, want ab", c.Delivered())
	}
	c.recvA, c.recvB = 5, 3
	if c.Delivered() != "ba" {
		t.Fatalf("Delivered = %q, want ba", c.Delivered())
	}
}

// TestOrphanTraceStamp covers the trace-stamped deadletter Detail: the
// actors runtime appends " trace=<16 hex>" when the dead envelope carried a
// sampled span, and the orphan detector must (a) key the orphan by the bare
// message type so an untraced retry still clears it, and (b) name the trace
// in the finding so it links to the span ledger that died. The message type
// here is an anonymous struct whose %T contains spaces — the reason the tag
// is stripped by suffix detection, not field splitting.
func TestOrphanTraceStamp(t *testing.T) {
	rec := trace.NewRecorder()
	const msgType = "struct { A int; B string }"
	rec.Record("client", trace.KindDeadLetter, "actor(svc)",
		"norecipient "+msgType+" trace=00c0ffee00c0ffee")
	suite := Analyze(rec.Events())
	found := FilterCategory(suite.Findings(), OrphanedProtocol)
	if len(found) != 1 {
		t.Fatalf("findings = %v, want one orphan", found)
	}
	if !strings.Contains(found[0].Summary, "(trace 00c0ffee00c0ffee)") {
		t.Fatalf("summary does not name the trace: %q", found[0].Summary)
	}
	if !strings.Contains(found[0].Summary, msgType) {
		t.Fatalf("summary lost the message type: %q", found[0].Summary)
	}

	// A later (untraced) send of the same payload type to the same-named
	// destination is the retry: the traced orphan must clear, which only
	// works if the orphan key stripped the stamp.
	rec2 := trace.NewRecorder()
	rec2.Record("client", trace.KindDeadLetter, "actor(svc)",
		"norecipient "+msgType+" trace=00c0ffee00c0ffee")
	rec2.Record("client", trace.KindSend, "actor(svc)#1", msgType)
	if found := FilterCategory(Analyze(rec2.Events()).Findings(), OrphanedProtocol); len(found) != 0 {
		t.Fatalf("traced orphan survived an untraced retry: %v", found)
	}
}

func TestCutTraceTag(t *testing.T) {
	cases := []struct {
		in, rest, id string
	}{
		{"dead struct { X int } trace=0123456789abcdef", "dead struct { X int }", "0123456789abcdef"},
		{"dead string", "dead string", ""},
		{"dead string trace=xyz", "dead string trace=xyz", ""},                             // not hex
		{"dead string trace=0123", "dead string trace=0123", ""},                           // wrong width
		{"overloaded x trace=ABCDEF0123456789", "overloaded x trace=ABCDEF0123456789", ""}, // uppercase: not ours
	}
	for _, c := range cases {
		rest, id := cutTraceTag(c.in)
		if rest != c.rest || id != c.id {
			t.Errorf("cutTraceTag(%q) = (%q, %q), want (%q, %q)", c.in, rest, id, c.rest, c.id)
		}
	}
}
