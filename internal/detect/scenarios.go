package detect

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/actors"
	"repro/internal/trace"
)

// This file holds the live-runtime witness scenarios for the three
// detectors: each is a small actor program rendered twice — a buggy variant
// the detector must flag and a fixed variant it must stay silent on. They
// are exported (rather than living in the tests) because internal/bugs
// wires them into the gallery as DetectorWitness entries, alongside the
// pseudocode explorer witnesses.

type ackMsg struct{ tag string }
type goMsg struct{}
type probeMsg struct{}
type upgradeMsg struct{}
type upgradedMsg struct{}
type boomMsg struct{}
type computeMsg struct{}
type restartedMsg struct{}
type dataMsg struct{}
type trigMsg struct{}
type fwdMsg struct{}
type reqMsg struct{}

const scenarioTimeout = 10 * time.Second

// FilterCategory keeps only findings of one category.
func FilterCategory(fs []Finding, cat Category) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Category == cat {
			out = append(out, f)
		}
	}
	return out
}

// RunOrderRaceScenario executes one run of the reply-confusion scenario
// (the live analogue of the "unordered-reply-confusion" gallery entry): two
// worker actors send acks to a collector whose observable output is the
// arrival order. firstWorker (1 or 2) selects which worker is driven first;
// with sequenced=false the two acks are causally concurrent, so the
// schedule alone decides the output — running the scenario with both drive
// orders hands ConfirmOrderRaces the two schedules it needs. sequenced=true
// is the fix: worker one triggers worker two on its own causal path, the
// acks become ordered, and no concurrent candidate exists.
func RunOrderRaceScenario(firstWorker int, sequenced bool) (Run, error) {
	rec := trace.NewRecorder()
	suite := New()
	suite.Attach(rec)
	sys := actors.NewSystem(actors.Config{Recorder: rec})
	defer sys.Shutdown()

	var mu sync.Mutex
	var got string
	collector := sys.MustSpawn("collector", func(ctx *actors.Context, msg any) {
		switch m := msg.(type) {
		case ackMsg:
			mu.Lock()
			got += m.tag
			mu.Unlock()
		case probeMsg:
			ctx.Reply("ok")
		}
	})
	var w2 *actors.Ref
	worker := func(tag string, chain bool) actors.Behavior {
		return func(ctx *actors.Context, msg any) {
			switch msg.(type) {
			case goMsg:
				ctx.Send(collector, ackMsg{tag})
				if chain {
					// The fix: the second request rides this worker's causal
					// past instead of racing it.
					ctx.Send(w2, goMsg{})
				}
				ctx.Reply("sent")
			case probeMsg:
				ctx.Reply("ok")
			}
		}
	}
	w1 := sys.MustSpawn("w1", worker("first ", sequenced))
	w2 = sys.MustSpawn("w2", worker("second ", false))

	ask := func(r *actors.Ref, msg any) error {
		_, err := actors.Ask(sys, r, msg, scenarioTimeout)
		return err
	}
	var err error
	switch {
	case sequenced:
		// w2 fires via w1's chained send; probing w2 afterwards proves its
		// ack is enqueued before the collector probe below.
		err = firstErr(ask(w1, goMsg{}), ask(w2, probeMsg{}))
	case firstWorker == 1:
		err = firstErr(ask(w1, goMsg{}), ask(w2, goMsg{}))
	default:
		err = firstErr(ask(w2, goMsg{}), ask(w1, goMsg{}))
	}
	if err != nil {
		return Run{}, err
	}
	// The collector probe quiesces it: per-sender FIFO means every ack
	// enqueued above is processed before the probe's reply.
	if err := ask(collector, probeMsg{}); err != nil {
		return Run{}, err
	}
	mu.Lock()
	metric := got
	mu.Unlock()
	return Run{Candidates: suite.Candidates(), Metric: metric}, nil
}

// RunStaleRestartScenario renders the behavior-lost-across-restart defect:
// a client upgrades a supervised service (Become), crashes it, and — in
// the buggy variant — keeps using it as if the upgrade survived the
// restart, so its request is dispatched to the rolled-back factory
// behavior. The fixed variant listens for the restart lifecycle event and
// re-runs the upgrade handshake before further use. Returns the
// stale-behavior findings and which version served the final compute.
func RunStaleRestartScenario(fixed bool) ([]Finding, string, error) {
	rec := trace.NewRecorder()
	suite := New()
	suite.Attach(rec)
	sys := actors.NewSystem(actors.Config{Recorder: rec})
	defer sys.Shutdown()

	served := make(chan string, 1)
	var v0, v1 actors.Behavior
	v0 = func(ctx *actors.Context, msg any) {
		switch msg.(type) {
		case upgradeMsg:
			ctx.Become(v1)
			ctx.Reply(upgradedMsg{})
		case computeMsg:
			served <- "v0"
		}
	}
	v1 = func(ctx *actors.Context, msg any) {
		switch msg.(type) {
		case upgradeMsg:
			ctx.Become(v1)
			ctx.Reply(upgradedMsg{})
		case boomMsg:
			panic("injected crash")
		case computeMsg:
			served <- "v1"
		}
	}

	var client *actors.Ref
	sup := sys.Supervise("root", actors.SupervisorSpec{
		MaxRestarts: 3,
		OnEvent: func(ev actors.LifecycleEvent) {
			if fixed && ev.Kind == actors.LifecycleRestarted {
				client.Tell(restartedMsg{})
			}
		},
	})
	svc, err := sup.Spawn("svc", func() actors.Behavior { return v0 })
	if err != nil {
		return nil, "", err
	}

	acks := 0 // touched only by the client's own goroutine
	client = sys.MustSpawn("client", func(ctx *actors.Context, msg any) {
		switch msg.(type) {
		case goMsg:
			ctx.Send(svc, upgradeMsg{})
		case upgradedMsg:
			acks++
			switch {
			case !fixed:
				// Buggy: assume the upgrade is durable — crash, then use.
				ctx.Send(svc, boomMsg{})
				ctx.Send(svc, computeMsg{})
			case acks == 1:
				ctx.Send(svc, boomMsg{})
			default:
				ctx.Send(svc, computeMsg{})
			}
		case restartedMsg: // fixed only: redo the handshake
			ctx.Send(svc, upgradeMsg{})
		}
	})

	client.Tell(goMsg{})
	select {
	case version := <-served:
		return FilterCategory(suite.Findings(), StaleBehavior), version, nil
	case <-time.After(scenarioTimeout):
		return nil, "", fmt.Errorf("detect: stale-restart scenario: compute never served")
	}
}

// RunStaleRaceScenario renders the interleaving-behind-Become defect: actor
// X sends data to a state-machine service while actor Y concurrently sends
// the trigger that makes it Become its next state. In the buggy variant the
// two sends are causally unordered — the schedule decides which handler
// sees the data. The fix chains Y's trigger causally after X's send.
func RunStaleRaceScenario(fixed bool) ([]Finding, error) {
	rec := trace.NewRecorder()
	suite := New()
	suite.Attach(rec)
	sys := actors.NewSystem(actors.Config{Recorder: rec})
	defer sys.Shutdown()

	var v0, v1 actors.Behavior
	v0 = func(ctx *actors.Context, msg any) {
		switch msg.(type) {
		case trigMsg:
			ctx.Become(v1)
		case probeMsg:
			ctx.Reply("ok")
		}
	}
	v1 = func(ctx *actors.Context, msg any) {
		if _, ok := msg.(probeMsg); ok {
			ctx.Reply("ok")
		}
	}
	svc := sys.MustSpawn("svc", v0)

	var y *actors.Ref
	x := sys.MustSpawn("x", func(ctx *actors.Context, msg any) {
		ctx.Send(svc, dataMsg{})
		if fixed {
			ctx.Send(y, fwdMsg{}) // the trigger rides x's causal past
		}
		ctx.Reply("sent")
	})
	y = sys.MustSpawn("y", func(ctx *actors.Context, msg any) {
		switch msg.(type) {
		case goMsg:
			ctx.Send(svc, trigMsg{})
			ctx.Reply("sent")
		case fwdMsg:
			ctx.Send(svc, trigMsg{})
		case probeMsg:
			ctx.Reply("ok")
		}
	})

	if _, err := actors.Ask(sys, x, goMsg{}, scenarioTimeout); err != nil {
		return nil, err
	}
	if fixed {
		// Quiesce y: its FIFO means the probe reply proves the chained
		// fwd was processed, so trig is already enqueued at svc — the
		// final probe below is causally after it, not racing it.
		if _, err := actors.Ask(sys, y, probeMsg{}, scenarioTimeout); err != nil {
			return nil, err
		}
	} else {
		if _, err := actors.Ask(sys, y, goMsg{}, scenarioTimeout); err != nil {
			return nil, err
		}
	}
	// Quiesce: per-sender FIFO only orders one sender's messages, but by
	// now both data and trig are enqueued at svc, so a probe lands after
	// both and its reply proves the Become (if any) has been recorded.
	if _, err := actors.Ask(sys, svc, probeMsg{}, scenarioTimeout); err != nil {
		return nil, err
	}
	return FilterCategory(suite.Findings(), StaleBehavior), nil
}

// RunOrphanScenario renders the abandoned-protocol defect: a client fires a
// request at a service that has stopped, and the message dies as a dead
// deadletter. The buggy variant never retries; the fixed one respawns the
// service (same name, fresh incarnation) and resends — the causally-later
// retry the detector looks for.
func RunOrphanScenario(fixed bool) ([]Finding, error) {
	rec := trace.NewRecorder()
	suite := New()
	suite.Attach(rec)
	sys := actors.NewSystem(actors.Config{Recorder: rec})
	defer sys.Shutdown()

	svc := sys.MustSpawn("svc", func(ctx *actors.Context, msg any) {})
	sys.Stop(svc)
	sys.Await(svc)

	delivered := make(chan struct{}, 1)
	client := sys.MustSpawn("client", func(ctx *actors.Context, msg any) {
		ctx.Send(svc, reqMsg{}) // dead target → deadletter
		ctx.Reply("sent")
	})
	if _, err := actors.Ask(sys, client, goMsg{}, scenarioTimeout); err != nil {
		return nil, err
	}

	if fixed {
		// Recovery: a fresh incarnation under the same name, and a retry.
		svc2 := sys.MustSpawn("svc", func(ctx *actors.Context, msg any) {
			if _, ok := msg.(reqMsg); ok {
				select {
				case delivered <- struct{}{}:
				default:
				}
			}
		})
		retrier := sys.MustSpawn("retrier", func(ctx *actors.Context, msg any) {
			ctx.Send(svc2, reqMsg{})
			ctx.Reply("sent")
		})
		if _, err := actors.Ask(sys, retrier, goMsg{}, scenarioTimeout); err != nil {
			return nil, err
		}
		select {
		case <-delivered:
		case <-time.After(scenarioTimeout):
			return nil, fmt.Errorf("detect: orphan scenario: retry never delivered")
		}
	}
	return FilterCategory(suite.Findings(), OrphanedProtocol), nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
