package metrics

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestPromSanitize(t *testing.T) {
	cases := map[string]string{
		"actors.mailbox.wait_ns": "actors_mailbox_wait_ns",
		"node.wire.sent":         "node_wire_sent",
		"9lives":                 "_9lives",
		"a-b c":                  "a_b_c",
		"ok_name:sub":            "ok_name:sub",
	}
	for in, want := range cases {
		if got := PromSanitize(in); got != want {
			t.Errorf("PromSanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

// parseProm is a minimal validator for the Prometheus text format: every
// non-comment line must be `name{labels} value` or `name value` with a
// legal metric name and a parseable float value. It returns samples keyed
// by the full series name (including labels).
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	validName := func(s string) bool {
		for i, r := range s {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			case r >= '0' && r <= '9':
				if i == 0 {
					return false
				}
			default:
				return false
			}
		}
		return len(s) > 0
	}
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "TYPE" && fields[1] != "HELP") {
				t.Fatalf("bad comment line: %q", line)
			}
			if !validName(fields[2]) {
				t.Fatalf("bad family name in %q", line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					t.Fatalf("bad TYPE line: %q", line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram":
				default:
					t.Fatalf("bad type in %q", line)
				}
			}
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("no value separator in %q", line)
		}
		series, val := line[:sp], line[sp+1:]
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("unbalanced labels in %q", line)
			}
			name = series[:i]
			labels := series[i+1 : len(series)-1]
			for _, l := range strings.Split(labels, ",") {
				k, v, ok := strings.Cut(l, "=")
				if !ok || !validName(k) || !strings.HasPrefix(v, `"`) || !strings.HasSuffix(v, `"`) {
					t.Fatalf("bad label %q in %q", l, line)
				}
			}
		}
		if !validName(name) {
			t.Fatalf("illegal metric name %q in %q", name, line)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil && val != "+Inf" && val != "-Inf" && val != "NaN" {
			t.Fatalf("bad value %q in %q: %v", val, line, err)
		}
		out[series] = f
	}
	return out
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("actors.deadletters").Add(3)
	r.Gauge("actors.mailbox.backlog", func() int64 { return 7 })
	h := r.Histogram("actors.handler_ns")
	h.Observe(100 * time.Nanosecond)
	h.Observe(100 * time.Nanosecond)
	h.Observe(3 * time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	samples := parseProm(t, text)

	if samples["actors_deadletters"] != 3 {
		t.Errorf("counter sample wrong: %v", samples)
	}
	if samples["actors_mailbox_backlog"] != 7 {
		t.Errorf("gauge sample wrong: %v", samples)
	}
	if samples[`actors_handler_ns_bucket{le="+Inf"}`] != 3 {
		t.Errorf("+Inf bucket != 3:\n%s", text)
	}
	if samples["actors_handler_ns_count"] != 3 {
		t.Errorf("histogram count wrong:\n%s", text)
	}
	// The two 100ns observations land in the [64,128) bucket whose upper
	// bound is 128ns = 1.28e-7s.
	if got := samples[`actors_handler_ns_bucket{le="0.000000128"}`]; got != 2 {
		t.Errorf("128ns cumulative bucket = %v, want 2:\n%s", got, text)
	}
	// Buckets must be cumulative (monotone nondecreasing in le order).
	var prev float64
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "actors_handler_ns_bucket") {
			continue
		}
		var v float64
		fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%f", &v)
		if v < prev {
			t.Fatalf("buckets not cumulative at %q", line)
		}
		prev = v
	}
	if !strings.Contains(text, "# TYPE actors_handler_ns histogram") {
		t.Errorf("missing histogram TYPE line:\n%s", text)
	}
	// HELP docstrings carry the original dotted registry name.
	if !strings.Contains(text, "# HELP actors_handler_ns actors.handler_ns") {
		t.Errorf("missing histogram HELP line:\n%s", text)
	}
	if !strings.Contains(text, "# HELP actors_deadletters actors.deadletters") {
		t.Errorf("missing counter HELP line:\n%s", text)
	}
}

func TestPromEscaping(t *testing.T) {
	if got := promEscapeHelp("a\\b\nc"); got != `a\\b\nc` {
		t.Errorf("promEscapeHelp = %q", got)
	}
	if got := promEscapeLabel("a\\b\"c\nd"); got != `a\\b\"c\nd` {
		t.Errorf("promEscapeLabel = %q", got)
	}
}

func TestWritePrometheusEmptyHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty_ns")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples := parseProm(t, b.String())
	if samples[`empty_ns_bucket{le="+Inf"}`] != 0 || samples["empty_ns_count"] != 0 {
		t.Fatalf("empty histogram exposition wrong:\n%s", b.String())
	}
}
