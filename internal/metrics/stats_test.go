package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanBasic(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1.5, 2.5, -1}); got != 3 {
		t.Fatalf("Sum = %v, want 3", got)
	}
}

func TestVarianceKnown(t *testing.T) {
	// Sample variance of 2,4,4,4,5,5,7,9 is 32/7.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, 32.0/7.0)
	}
}

func TestVarianceDegenerate(t *testing.T) {
	if Variance([]float64{5}) != 0 {
		t.Fatal("Variance of singleton should be 0")
	}
	if Variance(nil) != 0 {
		t.Fatal("Variance of empty should be 0")
	}
}

func TestStdDevConstant(t *testing.T) {
	if got := StdDev([]float64{3, 3, 3, 3}); got != 0 {
		t.Fatalf("StdDev of constant = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	mn, err := Min(xs)
	if err != nil || mn != -1 {
		t.Fatalf("Min = %v, %v", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 7 {
		t.Fatalf("Max = %v, %v", mx, err)
	}
}

func TestMinMaxEmpty(t *testing.T) {
	if _, err := Min(nil); err != ErrEmpty {
		t.Fatalf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Fatalf("Max(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMedianOddEven(t *testing.T) {
	m, err := Median([]float64{5, 1, 3})
	if err != nil || m != 3 {
		t.Fatalf("Median odd = %v, %v", m, err)
	}
	m, err = Median([]float64{4, 1, 3, 2})
	if err != nil || m != 2.5 {
		t.Fatalf("Median even = %v, %v", m, err)
	}
}

func TestQuantileEdges(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	q0, _ := Quantile(xs, 0)
	q1, _ := Quantile(xs, 1)
	if q0 != 10 || q1 != 40 {
		t.Fatalf("Quantile edges = %v, %v", q0, q1)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("Quantile out of range should error")
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Fatal("Quantile empty should return ErrEmpty")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Quantile mutated input: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("Summarize = %+v", s)
	}
	if z := Summarize(nil); z != (Summary{}) {
		t.Fatalf("Summarize(nil) = %+v, want zero", z)
	}
}

func TestPermutationTestDetectsLargeDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := []float64{10, 11, 12, 10.5, 11.5, 10.2, 11.8, 12.1}
	b := []float64{0, 1, 2, 0.5, 1.5, 0.2, 1.8, 2.1}
	p, err := PermutationTest(a, b, 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.01 {
		t.Fatalf("p = %v, want < 0.01 for clearly separated samples", p)
	}
}

func TestPermutationTestNullIsLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := []float64{1, 2, 3, 4, 5, 6}
	b := []float64{1.1, 2.1, 2.9, 4.1, 4.9, 6.1}
	p, err := PermutationTest(a, b, 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.2 {
		t.Fatalf("p = %v, want large for identical-ish samples", p)
	}
}

func TestPermutationTestErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := PermutationTest(nil, []float64{1}, 10, rng); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
	if _, err := PermutationTest([]float64{1}, []float64{1}, 0, rng); err == nil {
		t.Fatal("iters=0 should error")
	}
}

func TestPairedPermutationTest(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	first := []float64{60, 55, 65, 58, 62, 57, 61, 59}
	second := []float64{80, 78, 82, 79, 81, 77, 83, 80}
	p, err := PairedPermutationTest(second, first, 4000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.02 {
		t.Fatalf("paired p = %v, want small for consistent improvement", p)
	}
	if _, err := PairedPermutationTest([]float64{1, 2}, []float64{1}, 10, rng); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestWelchT(t *testing.T) {
	a := []float64{10, 12, 14, 16}
	b := []float64{1, 2, 3, 4}
	tt, err := WelchT(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if tt <= 0 {
		t.Fatalf("t = %v, want positive when mean(a) > mean(b)", tt)
	}
	if _, err := WelchT([]float64{1}, b); err == nil {
		t.Fatal("small sample should error")
	}
	if _, err := WelchT([]float64{1, 1}, []float64{1, 1}); err == nil {
		t.Fatal("zero variance should error")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 10 {
		t.Fatalf("Total = %d, want 10", h.Total())
	}
	for i, c := range h.Counts {
		if c != 2 {
			t.Fatalf("bin %d count = %d, want 2 (%v)", i, c, h.Counts)
		}
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h, err := NewHistogram([]float64{5, 5, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] != 3 {
		t.Fatalf("all-equal values should land in bin 0: %v", h.Counts)
	}
	if _, err := NewHistogram(nil, 3); err != ErrEmpty {
		t.Fatal("empty should return ErrEmpty")
	}
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Fatal("nbins=0 should error")
	}
}

// Property: mean is within [min, max]; stddev >= 0; median within [min, max].
func TestSummaryPropertiesQuick(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-6 && s.Mean <= s.Max+1e-6 &&
			s.StdDev >= 0 && s.Median >= s.Min && s.Median <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: permutation test p-value is in (0, 1].
func TestPermutationPBoundsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(a8, b8 [4]float64) bool {
		a := a8[:]
		b := b8[:]
		for i := range a {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) {
				a[i] = 0
			}
			if math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
				b[i] = 0
			}
		}
		p, err := PermutationTest(a, b, 50, rng)
		return err == nil && p > 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is monotone in q.
func TestQuantileMonotoneQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		qs := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1}
		prev := math.Inf(-1)
		for _, q := range qs {
			v, err := Quantile(xs, q)
			if err != nil {
				t.Fatal(err)
			}
			if v < prev-1e-9 {
				t.Fatalf("quantile not monotone: q=%v v=%v prev=%v xs=%v", q, v, prev, xs)
			}
			prev = v
		}
	}
	sort.Float64s(nil) // keep sort imported even if refactored
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("TABLE II. PERFORMANCES ON TEST 1", "Group", "Shared Memory", "Message Passing", "Overall")
	tb.AddRow("S (9 students)", F(56.67), F(81.72), F(138.39))
	tb.AddRow("D (7 students)", F(76.14), F(65.93), F(142.07))
	out := tb.String()
	for _, want := range []string{"TABLE II", "Group", "56.67", "81.72", "142.07"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestTableSpanningRow(t *testing.T) {
	tb := NewTable("T", "A", "B")
	tb.AddRow("1", "2")
	tb.AddRowf("note: %d students", 6)
	out := tb.String()
	if !strings.Contains(out, "note: 6 students") {
		t.Fatalf("missing spanning row:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.005) != "1.00" && F(1.005) != "1.01" {
		t.Fatalf("F(1.005) = %q", F(1.005))
	}
	if Pct(0.5) != "50.00%" {
		t.Fatalf("Pct = %q", Pct(0.5))
	}
	if I(42) != "42" {
		t.Fatalf("I = %q", I(42))
	}
}

func TestTableNoTitleNoHeaders(t *testing.T) {
	tb := &Table{}
	tb.AddRow("x", "y")
	out := tb.String()
	if !strings.Contains(out, "x | y") {
		t.Fatalf("bare table render: %q", out)
	}
}
