package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PromSanitize maps a registry name onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_:]: the registry's dotted names ("actors.handler_ns")
// become underscore-separated ("actors_handler_ns"), and a leading digit
// gets an underscore prefix. Distinct registry names can collide after
// sanitization; the naming scheme in docs/OBSERVABILITY.md avoids that by
// construction.
func PromSanitize(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscapeHelp escapes a # HELP docstring per the text exposition format:
// backslash and newline are the only characters with escape sequences there.
func promEscapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promEscapeLabel escapes a label value per the text exposition format:
// backslash, double quote, and newline. (Not %q — Go quoting escapes more
// than the format defines, and a strict scraper must see only \\ \" \n.)
func promEscapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WritePrometheus renders every counter, gauge and histogram in the
// Prometheus text exposition format (version 0.0.4): counters and gauges as
// single samples with # HELP and # TYPE lines, histograms as the
// conventional cumulative _bucket{le="..."} series plus _sum and _count.
// The HELP text is the original dotted registry name — sanitization is
// lossy, and the docstring is where a scraped dashboard can recover the
// name the code uses. Histogram bucket boundaries are the power-of-two
// nanosecond uppers from LatencyHistogram, exposed in seconds as Prometheus
// convention wants. Families are emitted in sorted name order so output is
// diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]func() int64, len(r.gauges))
	for name, fn := range r.gauges {
		gauges[name] = fn
	}
	hists := make(map[string]*LatencyHistogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()

	type family struct {
		name string
		emit func(io.Writer, string) error
	}
	var fams []family
	for name, c := range counters {
		c := c
		fams = append(fams, family{name, func(w io.Writer, n string) error {
			_, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, c.Load())
			return err
		}})
	}
	for name, fn := range gauges {
		fn := fn
		fams = append(fams, family{name, func(w io.Writer, n string) error {
			_, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, fn())
			return err
		}})
	}
	for name, h := range hists {
		h := h
		fams = append(fams, family{name, func(w io.Writer, n string) error {
			return writePromHistogram(w, n, h.Snapshot())
		}})
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		n := PromSanitize(f.name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", n, promEscapeHelp(f.name)); err != nil {
			return err
		}
		if err := f.emit(w, n); err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, s HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	// Emit cumulative buckets up to the last non-empty one; the +Inf bucket
	// always closes the series. Bounds are seconds per Prometheus
	// convention (the registry name carries the _ns suffix for the raw
	// nanosecond series elsewhere, but le must be in base units).
	last := -1
	for b := histBuckets - 1; b >= 0; b-- {
		if s.Counts[b] != 0 {
			last = b
			break
		}
	}
	var cum int64
	for b := 0; b <= last; b++ {
		cum += s.Counts[b]
		upper := float64(BucketUpper(b)) / 1e9
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, promEscapeLabel(formatPromFloat(upper)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
		name, formatPromFloat(float64(s.Sum)/1e9), name, s.Count)
	return err
}

// formatPromFloat renders a float without an exponent for small magnitudes
// (Prometheus accepts scientific notation, but fixed point keeps the text
// greppable) and trims trailing zeros.
func formatPromFloat(f float64) string {
	out := fmt.Sprintf("%.9f", f)
	out = strings.TrimRight(out, "0")
	out = strings.TrimRight(out, ".")
	if out == "" || out == "-" {
		return "0"
	}
	return out
}
