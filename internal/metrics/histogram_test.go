package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramNilSafe(t *testing.T) {
	var h *LatencyHistogram
	h.Observe(time.Millisecond) // must not panic
	if d := h.Start().Stop(); d != 0 {
		t.Fatalf("nil timer returned %v, want 0", d)
	}
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 {
		t.Fatalf("nil snapshot not empty: %+v", s)
	}
	if got := h.P99(); got != 0 {
		t.Fatalf("nil P99 = %v, want 0", got)
	}
	if !strings.Contains(h.Summary(), "n=0") {
		t.Fatalf("nil Summary = %q", h.Summary())
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2},
		{1024, 10}, {1025, 10}, {2047, 10}, {2048, 11},
		{time.Hour, histBuckets - 1}, // clamped into the last bucket
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.d, got, c.want)
		}
	}
	if BucketLower(0) != 0 || BucketUpper(0) != 2 {
		t.Fatalf("bucket 0 bounds = [%d,%d)", BucketLower(0), BucketUpper(0))
	}
	if BucketLower(10) != 1024 || BucketUpper(10) != 2048 {
		t.Fatalf("bucket 10 bounds = [%d,%d)", BucketLower(10), BucketUpper(10))
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &LatencyHistogram{}
	// 90 fast observations and 10 slow ones: p50 in the fast bucket, p99 in
	// the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Nanosecond) // bucket [64,128)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond) // bucket [2^19, 2^20) ~ [524µs, 1.05ms)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if p50 := s.Quantile(0.50); p50 < 64 || p50 >= 128 {
		t.Errorf("p50 = %v, want within [64ns,128ns)", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 524288 || p99 > 2*1048576 {
		t.Errorf("p99 = %v, want around 1ms", p99)
	}
	wantSum := int64(90*100 + 10*1000000)
	if s.Sum != wantSum {
		t.Errorf("sum = %d, want %d", s.Sum, wantSum)
	}
	if mean := s.Mean(); mean != time.Duration(wantSum/100) {
		t.Errorf("mean = %v", mean)
	}
	// Quantile bounds clamp.
	if s.Quantile(-1) != s.Quantile(0) || s.Quantile(2) < s.Quantile(0.99) {
		t.Errorf("quantile clamping broken")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &LatencyHistogram{}
	const goroutines = 16
	const per = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*100 + 1))
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("count = %d, want %d (lost updates)", got, goroutines*per)
	}
}

func TestHistogramTimer(t *testing.T) {
	h := &LatencyHistogram{}
	tm := h.Start()
	time.Sleep(time.Millisecond)
	d := tm.Stop()
	if d < time.Millisecond {
		t.Fatalf("timer measured %v, want >= 1ms", d)
	}
	if h.Count() != 1 {
		t.Fatalf("count = %d after one timed section", h.Count())
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("x.lat_ns")
	h2 := r.Histogram("x.lat_ns")
	if h1 != h2 {
		t.Fatalf("same name returned distinct histograms")
	}
	h1.Observe(100 * time.Nanosecond)
	snap := r.Snapshot()
	byName := map[string]int64{}
	for _, s := range snap {
		byName[s.Name] = s.Value
	}
	if byName["x.lat_ns.count"] != 1 {
		t.Fatalf("snapshot missing histogram count: %v", snap)
	}
	if _, ok := byName["x.lat_ns.p99_ns"]; !ok {
		t.Fatalf("snapshot missing p99 sample: %v", snap)
	}
}
