package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing named count, safe for concurrent
// use. Obtain one from a Registry.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Registry is a flat namespace of named counters and gauges, the
// observability surface for runtime internals that used to be visible only
// in logs (mailbox deadletter counts, remote link state, frames on the
// wire). Counters are owned by the registry and written by the instrumented
// code; gauges are read-through functions sampled at Snapshot time, so a
// subsystem can expose counters it already maintains (for example
// actors.System.RegisterMetrics) without double bookkeeping.
//
// The zero value is ready to use. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]func() int64
	hists    map[string]*LatencyHistogram
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the counter registered under name, creating it on first
// use. Repeated calls with the same name return the same counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = map[string]*Counter{}
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge registers fn as the value source for name, replacing any previous
// gauge under that name. fn is called at Snapshot time and must be safe for
// concurrent use.
func (r *Registry) Gauge(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = map[string]func() int64{}
	}
	r.gauges[name] = fn
}

// Sample is one named value in a Snapshot.
type Sample struct {
	Name  string
	Value int64
}

// Snapshot reads every counter, gauge and histogram and returns the samples
// sorted by name, so two snapshots are directly comparable. A histogram
// named h contributes derived samples h.count, h.p50_ns, h.p95_ns and
// h.p99_ns.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	out := make([]Sample, 0, len(r.counters)+len(r.gauges)+4*len(r.hists))
	for name, c := range r.counters {
		out = append(out, Sample{Name: name, Value: c.Load()})
	}
	gauges := make(map[string]func() int64, len(r.gauges))
	for name, fn := range r.gauges {
		gauges[name] = fn
	}
	hists := make(map[string]*LatencyHistogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()
	for name, h := range hists {
		s := h.Snapshot()
		out = append(out,
			Sample{Name: name + ".count", Value: s.Count},
			Sample{Name: name + ".p50_ns", Value: int64(s.Quantile(0.50))},
			Sample{Name: name + ".p95_ns", Value: int64(s.Quantile(0.95))},
			Sample{Name: name + ".p99_ns", Value: int64(s.Quantile(0.99))},
		)
	}
	// Gauge functions run outside the registry lock: they may take locks of
	// their own (e.g. summing mailbox sizes), and must not deadlock against
	// concurrent Counter/Gauge registration.
	for name, fn := range gauges {
		out = append(out, Sample{Name: name, Value: fn()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Get returns the current value registered under name and whether it exists.
func (r *Registry) Get(name string) (int64, bool) {
	r.mu.Lock()
	c, cok := r.counters[name]
	fn, gok := r.gauges[name]
	r.mu.Unlock()
	if cok {
		return c.Load(), true
	}
	if gok {
		return fn(), true
	}
	return 0, false
}

// String renders the snapshot one "name value" line at a time, aligned.
func (r *Registry) String() string {
	samples := r.Snapshot()
	width := 0
	for _, s := range samples {
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	var b strings.Builder
	for _, s := range samples {
		fmt.Fprintf(&b, "%-*s %d\n", width, s.Name, s.Value)
	}
	return b.String()
}
