// Package metrics provides the small statistical toolkit used by the study
// simulation and the benchmark harness: summary statistics, confidence
// intervals, permutation tests (the paper reports a p=0.005 session effect),
// and plain-text table rendering for regenerating the paper's tables.
package metrics

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// ErrEmpty is returned by statistics that are undefined on empty samples.
var ErrEmpty = errors.New("metrics: empty sample")

// Mean returns the arithmetic mean of xs, or 0 if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the unbiased sample variance of xs.
// It returns 0 for samples of size < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs. It returns an error on an empty sample.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs. It returns an error on an empty sample.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Median returns the median of xs. It returns an error on an empty sample.
func Median(xs []float64) (float64, error) {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("metrics: quantile out of range")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics for xs. A zero Summary is
// returned for an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	md, _ := Median(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    mn,
		Max:    mx,
		Median: md,
	}
}

// PermutationTest estimates the two-sided p-value for the difference of
// means between samples a and b under the null hypothesis that the group
// labels are exchangeable. It draws iters random relabelings using rng.
//
// This is the test used to reproduce the paper's "students performed better
// in the 2nd session (79.20%) than in the 1st session (60.71%) (p=0.005)".
func PermutationTest(a, b []float64, iters int, rng *rand.Rand) (p float64, err error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, ErrEmpty
	}
	if iters <= 0 {
		return 0, errors.New("metrics: iters must be positive")
	}
	observed := math.Abs(Mean(a) - Mean(b))
	pool := make([]float64, 0, len(a)+len(b))
	pool = append(pool, a...)
	pool = append(pool, b...)
	na := len(a)
	extreme := 0
	perm := make([]float64, len(pool))
	for i := 0; i < iters; i++ {
		copy(perm, pool)
		rng.Shuffle(len(perm), func(x, y int) { perm[x], perm[y] = perm[y], perm[x] })
		d := math.Abs(Mean(perm[:na]) - Mean(perm[na:]))
		if d >= observed-1e-12 {
			extreme++
		}
	}
	// Add-one smoothing keeps the estimate away from an impossible p of 0.
	return (float64(extreme) + 1) / (float64(iters) + 1), nil
}

// PairedPermutationTest estimates the two-sided p-value for the mean of
// paired differences a[i]-b[i] under sign-flipping of each pair. The paper's
// session comparison is within-subject (each student took both sessions), so
// this is the more faithful test; both are provided.
func PairedPermutationTest(a, b []float64, iters int, rng *rand.Rand) (float64, error) {
	if len(a) == 0 || len(a) != len(b) {
		return 0, errors.New("metrics: paired samples must be equal-length and non-empty")
	}
	if iters <= 0 {
		return 0, errors.New("metrics: iters must be positive")
	}
	diffs := make([]float64, len(a))
	for i := range a {
		diffs[i] = a[i] - b[i]
	}
	observed := math.Abs(Mean(diffs))
	extreme := 0
	flipped := make([]float64, len(diffs))
	for i := 0; i < iters; i++ {
		for j, d := range diffs {
			if rng.Intn(2) == 0 {
				flipped[j] = d
			} else {
				flipped[j] = -d
			}
		}
		if math.Abs(Mean(flipped)) >= observed-1e-12 {
			extreme++
		}
	}
	return (float64(extreme) + 1) / (float64(iters) + 1), nil
}

// WelchT returns Welch's t statistic for samples a and b (no p-value; use
// PermutationTest for inference without distributional assumptions).
func WelchT(a, b []float64) (float64, error) {
	if len(a) < 2 || len(b) < 2 {
		return 0, errors.New("metrics: Welch t needs at least 2 observations per group")
	}
	va := Variance(a) / float64(len(a))
	vb := Variance(b) / float64(len(b))
	denom := math.Sqrt(va + vb)
	if denom == 0 {
		return 0, errors.New("metrics: zero pooled variance")
	}
	return (Mean(a) - Mean(b)) / denom, nil
}

// Histogram counts xs into nbins equal-width bins over [min, max].
// Values outside the range are clamped into the edge bins.
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// NewHistogram builds a histogram of xs with nbins bins.
func NewHistogram(xs []float64, nbins int) (*Histogram, error) {
	if nbins <= 0 {
		return nil, errors.New("metrics: nbins must be positive")
	}
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	h := &Histogram{Min: mn, Max: mx, Counts: make([]int, nbins)}
	width := (mx - mn) / float64(nbins)
	for _, x := range xs {
		var idx int
		if width == 0 {
			idx = 0
		} else {
			idx = int((x - mn) / width)
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= nbins {
			idx = nbins - 1
		}
		h.Counts[idx]++
	}
	return h, nil
}

// Total returns the number of observations in the histogram.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}
