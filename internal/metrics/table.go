package metrics

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// Table renders aligned plain-text tables in the style of the paper's
// Tables I-III. Cells are strings; numeric helpers format consistently.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row. Short rows are padded with empty cells; long rows
// extend the column count.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a single-cell row with Sprintf formatting, useful for
// footnotes and spanning annotations.
func (t *Table) AddRowf(format string, args ...any) {
	t.Rows = append(t.Rows, []string{fmt.Sprintf(format, args...)})
}

// F formats a float with 2 decimal places, the precision used in Table II.
func F(x float64) string { return fmt.Sprintf("%.2f", x) }

// Pct formats a ratio as a percentage with 2 decimal places.
func Pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }

// I formats an int.
func I(x int) string { return fmt.Sprintf("%d", x) }

func (t *Table) columnWidths() []int {
	n := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > n {
			n = len(r)
		}
	}
	w := make([]int, n)
	for i, h := range t.Headers {
		if utf8.RuneCountInString(h) > w[i] {
			w[i] = utf8.RuneCountInString(h)
		}
	}
	for _, r := range t.Rows {
		// Rows that span (fewer cells than columns) don't constrain widths
		// beyond their own cells.
		for i, c := range r {
			if len(r) > 1 && utf8.RuneCountInString(c) > w[i] {
				w[i] = utf8.RuneCountInString(c)
			}
		}
	}
	return w
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	w := t.columnWidths()
	total := 0
	for _, x := range w {
		total += x
	}
	total += 3 * (len(w) - 1)
	if total < len(t.Title) {
		total = len(t.Title)
	}
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", total))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		if len(cells) == 1 && len(w) > 1 {
			// Spanning row.
			b.WriteString(cells[0])
			b.WriteByte('\n')
			return
		}
		for i, c := range cells {
			if i > 0 {
				b.WriteString(" | ")
			}
			pad := 0
			if i < len(w) {
				pad = w[i] - utf8.RuneCountInString(c)
			}
			b.WriteString(c)
			if i < len(cells)-1 && pad > 0 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
