package metrics

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// LatencyHistogram is a concurrent, fixed-footprint histogram of durations
// with logarithmic (power-of-two) buckets over nanoseconds. It is built for
// hot paths: Observe is a couple of atomic adds with no allocation and no
// locks, the counters are striped across cache lines so parallel writers do
// not fight over one line, and every method is safe to call on a nil
// receiver so instrumented code can keep a single unconditional call site —
// a disabled histogram costs one predictable branch.
//
// Bucket b counts observations in [2^b ns, 2^(b+1) ns); bucket 0 also
// absorbs zero and negative durations, and the last bucket absorbs
// everything above ~9 minutes. Quantile estimates interpolate linearly
// inside a bucket, so the error is bounded by the bucket width (a factor of
// two) — adequate for p50/p95/p99 readouts of scheduling and messaging
// latencies, which is what the runtimes feed it.
type LatencyHistogram struct {
	stripes [histStripes]histStripe
}

const (
	// histStripes must be a power of two; sixteen stripes keeps parallel
	// senders mostly on separate cache lines (stripe choice is a hash, so
	// fewer stripes mean frequent birthday collisions at 8-way
	// parallelism) without bloating the footprint: each stripe is 6 cache
	// lines, so a histogram is 6 KiB.
	histStripes = 16
	// histBuckets of power-of-two widths cover 1ns .. 2^40ns (~18 min).
	histBuckets = 40
)

type histStripe struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64
	// Pad the stripe to a cache-line multiple so adjacent stripes never
	// share a line: 40*8 + 8 = 328 bytes -> round up to 384.
	_ [56]byte
}

// stripeFor picks a stripe from the address of a stack variable (see
// stripeIndex in striped.go). Distinct goroutines run on distinct stacks
// (allocated with at least 2 KiB alignment/spacing), so bits 11+ of a stack
// address spread concurrent writers across stripes; the same goroutine
// tends to hash to the same stripe, which keeps its line warm. This is the
// cheapest goroutine-affinity signal available without runtime hooks.
func (h *LatencyHistogram) stripeFor() *histStripe {
	return &h.stripes[stripeIndex()]
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns)) - 1
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// BucketLower returns the inclusive lower bound of bucket i, the layout
// documented in docs/OBSERVABILITY.md. Bucket 0 starts at 0.
func BucketLower(i int) time.Duration {
	if i <= 0 {
		return 0
	}
	return time.Duration(1) << uint(i)
}

// BucketUpper returns the exclusive upper bound of bucket i.
func BucketUpper(i int) time.Duration {
	return time.Duration(1) << uint(i+1)
}

// Observe records one duration. Safe for concurrent use; a no-op on a nil
// receiver.
func (h *LatencyHistogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	s := h.stripeFor()
	s.counts[bucketOf(d)].Add(1)
	s.sum.Add(d.Nanoseconds())
}

// Start begins a timing. Use as: defer h.Start().Stop() or pair
// t := h.Start(); ...; t.Stop(). Safe on a nil receiver: the returned
// Timer's Stop is then a no-op that does not even read the clock.
func (h *LatencyHistogram) Start() Timer {
	if h == nil {
		return Timer{}
	}
	return Timer{h: h, start: time.Now()}
}

// Timer is one in-flight measurement from LatencyHistogram.Start.
type Timer struct {
	h     *LatencyHistogram
	start time.Time
}

// Stop records the elapsed time since Start and returns it. A Timer from a
// nil histogram records nothing and returns zero.
func (t Timer) Stop() time.Duration {
	if t.h == nil {
		return 0
	}
	d := time.Since(t.start)
	t.h.Observe(d)
	return d
}

// HistogramSnapshot is a point-in-time merge of all stripes.
type HistogramSnapshot struct {
	Counts [histBuckets]int64
	Count  int64
	Sum    int64 // total observed nanoseconds
}

// Snapshot merges the stripes into one consistent-enough view. Concurrent
// Observes may land in some buckets and not others; each bucket count is
// individually exact and monotone. Safe on a nil receiver (returns zeros).
func (h *LatencyHistogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := range h.stripes {
		st := &h.stripes[i]
		for b := 0; b < histBuckets; b++ {
			c := st.counts[b].Load()
			s.Counts[b] += c
			s.Count += c
		}
		s.Sum += st.sum.Load()
	}
	return s
}

// Count returns the total number of observations.
func (h *LatencyHistogram) Count() int64 { return h.Snapshot().Count }

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation within the containing bucket. Returns 0 for an empty
// histogram.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for b := 0; b < histBuckets; b++ {
		c := float64(s.Counts[b])
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo := float64(BucketLower(b))
			hi := float64(BucketUpper(b))
			frac := (rank - cum) / c
			return time.Duration(lo + frac*(hi-lo))
		}
		cum += c
	}
	return BucketUpper(histBuckets - 1)
}

// Mean returns the arithmetic mean of the observations (exact, from the
// running sum, unlike the bucket-quantized quantiles).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}

// P50, P95 and P99 are the quantile readouts the runtimes report.
func (h *LatencyHistogram) P50() time.Duration { return h.Snapshot().Quantile(0.50) }
func (h *LatencyHistogram) P95() time.Duration { return h.Snapshot().Quantile(0.95) }
func (h *LatencyHistogram) P99() time.Duration { return h.Snapshot().Quantile(0.99) }

// Summary renders "n=<count> p50=<d> p95=<d> p99=<d> mean=<d>" for logs and
// tables. Safe on a nil receiver.
func (h *LatencyHistogram) Summary() string {
	s := h.Snapshot()
	return fmt.Sprintf("n=%d p50=%v p95=%v p99=%v mean=%v",
		s.Count, s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99), s.Mean())
}

// Histogram returns the latency histogram registered under name, creating
// it on first use. Repeated calls with the same name return the same
// histogram, so independent subsystems can share one series.
func (r *Registry) Histogram(name string) *LatencyHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = map[string]*LatencyHistogram{}
	}
	h, ok := r.hists[name]
	if !ok {
		h = &LatencyHistogram{}
		r.hists[name] = h
	}
	return h
}

// histograms returns a copied name->histogram map for iteration outside the
// registry lock.
func (r *Registry) histograms() map[string]*LatencyHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]*LatencyHistogram, len(r.hists))
	for name, h := range r.hists {
		out[name] = h
	}
	return out
}
