package metrics

import (
	"sync/atomic"
	"unsafe"
)

// stripeIndex picks a stripe from the address of a stack variable — see
// LatencyHistogram.stripeFor for why this approximates goroutine affinity.
func stripeIndex() int {
	var marker byte
	return int(uintptr(unsafe.Pointer(&marker)) >> 11 & (histStripes - 1))
}

// StripedCounter is a write-optimized exact counter for per-operation hot
// paths: Add lands on one of eight cache-line-padded stripes chosen by
// goroutine affinity, so parallel writers do not serialize on a single
// cache line the way a plain atomic counter makes them. Load sums the
// stripes — exact once writers have quiesced, momentarily fuzzy while they
// have not (like any concurrent counter read).
//
// The per-stripe running total returned by Add doubles as a cheap sampling
// tick: `if c.Add(1)&(rate-1) == 0 { ...take the expensive measurement }`
// samples one in rate operations per stripe with no extra shared state.
type StripedCounter struct {
	stripes [histStripes]stripedCell
}

type stripedCell struct {
	v atomic.Int64
	_ [56]byte // pad to a full cache line
}

// Add increments the counter and returns the new value of the stripe it
// landed on (not the global total — use Load for that).
func (c *StripedCounter) Add(delta int64) int64 {
	return c.stripes[stripeIndex()].v.Add(delta)
}

// Load returns the sum across stripes.
func (c *StripedCounter) Load() int64 {
	var n int64
	for i := range c.stripes {
		n += c.stripes[i].v.Load()
	}
	return n
}
