package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatal("zero value not zero")
	}
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("Load = %d, want 5", got)
	}
}

func TestRegistryCounterGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits")
	b := r.Counter("hits")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Add(3)
	if v, ok := r.Get("hits"); !ok || v != 3 {
		t.Fatalf("Get(hits) = %d,%v", v, ok)
	}
	if _, ok := r.Get("missing"); ok {
		t.Fatal("Get(missing) reported ok")
	}
}

func TestRegistryGaugeAndSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	v := int64(7)
	r.Gauge("a.gauge", func() int64 { return v })

	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d samples", len(snap))
	}
	if snap[0].Name != "a.gauge" || snap[1].Name != "b.count" {
		t.Fatalf("snapshot not sorted by name: %v", snap)
	}
	if snap[0].Value != 7 || snap[1].Value != 2 {
		t.Fatalf("snapshot values: %v", snap)
	}
	v = 9 // gauges are live reads
	if got, _ := r.Get("a.gauge"); got != 9 {
		t.Fatalf("gauge not live: %d", got)
	}
}

// TestRegistryGaugeMayReenterRegistry pins the lock discipline: a gauge
// function that itself reads the registry (as actor-system gauges that sum
// over other state do) must not deadlock Snapshot.
func TestRegistryGaugeMayReenterRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("base").Add(5)
	r.Gauge("derived", func() int64 {
		v, _ := r.Get("base")
		return v * 2
	})
	done := make(chan []Sample, 1)
	go func() { done <- r.Snapshot() }()
	select {
	case snap := <-done:
		for _, s := range snap {
			if s.Name == "derived" && s.Value != 10 {
				t.Fatalf("derived = %d, want 10", s.Value)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Snapshot deadlocked on a re-entrant gauge")
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("shared").Inc()
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if v, _ := r.Get("shared"); v != 8*500 {
		t.Fatalf("shared = %d, want %d", v, 8*500)
	}
}

func TestRegistryString(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests").Add(12)
	r.Gauge("inflight", func() int64 { return 3 })
	out := r.String()
	if !strings.Contains(out, "requests") || !strings.Contains(out, "12") {
		t.Fatalf("String() missing counter:\n%s", out)
	}
	if !strings.Contains(out, "inflight") || !strings.Contains(out, "3") {
		t.Fatalf("String() missing gauge:\n%s", out)
	}
}
