package coro

import (
	"errors"
	"testing"
)

func TestGeneratorBasic(t *testing.T) {
	g := NewGenerator(func(yield func(int)) {
		for i := 1; i <= 4; i++ {
			yield(i * i)
		}
	})
	got := g.Collect()
	want := []int{1, 4, 9, 16}
	if len(got) != len(want) {
		t.Fatalf("Collect = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Collect = %v, want %v", got, want)
		}
	}
	if _, ok := g.Next(); ok {
		t.Fatal("exhausted generator should return ok=false")
	}
}

func TestGeneratorLazy(t *testing.T) {
	produced := 0
	g := NewGenerator(func(yield func(int)) {
		for i := 0; i < 100; i++ {
			produced++
			yield(i)
		}
	})
	if produced != 0 {
		t.Fatal("generator should be lazy")
	}
	g.Next()
	g.Next()
	if produced != 2 {
		t.Fatalf("produced = %d, want 2 (one element per Next)", produced)
	}
	g.Stop()
	if _, ok := g.Next(); ok {
		t.Fatal("stopped generator should be exhausted")
	}
}

func TestGeneratorEmpty(t *testing.T) {
	g := NewGenerator(func(yield func(string)) {})
	if _, ok := g.Next(); ok {
		t.Fatal("empty generator should be immediately exhausted")
	}
	if got := g.Collect(); len(got) != 0 {
		t.Fatalf("Collect = %v", got)
	}
}

func TestGeneratorFibonacci(t *testing.T) {
	g := NewGenerator(func(yield func(int)) {
		a, b := 0, 1
		for i := 0; i < 10; i++ {
			yield(a)
			a, b = b, a+b
		}
	})
	got := g.Collect()
	want := []int{0, 1, 1, 2, 3, 5, 8, 13, 21, 34}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fib = %v", got)
		}
	}
}

func TestSymmetricTransferPingPong(t *testing.T) {
	var a, b *Coroutine
	var log []string
	a = New(func(y *Yielder, in any) any {
		log = append(log, "a:"+in.(string))
		v := y.Transfer(b, "from-a")
		log = append(log, "a:"+v.(string))
		return "a-done"
	})
	b = New(func(y *Yielder, in any) any {
		log = append(log, "b:"+in.(string))
		v := y.Transfer(a, "from-b")
		log = append(log, "b:"+v.(string))
		return "b-done"
	})
	ret, err := RunSymmetric(a, "start")
	if err != nil {
		t.Fatal(err)
	}
	// a gets "start", transfers to b; b transfers back to a; a returns.
	if ret != "a-done" {
		t.Fatalf("ret = %v", ret)
	}
	want := []string{"a:start", "b:from-a", "a:from-b"}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestSymmetricChain(t *testing.T) {
	// A chain of N coroutines each incrementing and transferring onward;
	// the last returns the total.
	const n = 10
	cos := make([]*Coroutine, n)
	for i := n - 1; i >= 0; i-- {
		i := i
		cos[i] = New(func(y *Yielder, in any) any {
			v := in.(int) + 1
			if i == n-1 {
				return v
			}
			return y.Transfer(cos[i+1], v) // tail transfer; never resumed
		})
	}
	ret, err := RunSymmetric(cos[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if ret != n {
		t.Fatalf("ret = %v, want %d", ret, n)
	}
}

func TestRunSymmetricRejectsPlainYield(t *testing.T) {
	co := New(func(y *Yielder, _ any) any {
		y.Yield("oops")
		return nil
	})
	if _, err := RunSymmetric(co, nil); err != ErrTransferOutside {
		t.Fatalf("err = %v, want ErrTransferOutside", err)
	}
}

func TestRunSymmetricPropagatesPanic(t *testing.T) {
	co := New(func(y *Yielder, _ any) any { panic("sym") })
	_, err := RunSymmetric(co, nil)
	var pe PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
}

func TestSchedulerRunsAllTasks(t *testing.T) {
	s := NewScheduler()
	var order []string
	s.Go("t1", func(tc *TaskCtl) {
		order = append(order, "t1-a")
		tc.Pause()
		order = append(order, "t1-b")
	})
	s.Go("t2", func(tc *TaskCtl) {
		order = append(order, "t2-a")
		tc.Pause()
		order = append(order, "t2-b")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"t1-a", "t2-a", "t1-b", "t2-b"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (round-robin)", order, want)
		}
	}
}

func TestSchedulerWaitUntil(t *testing.T) {
	s := NewScheduler()
	ready := false
	var got []string
	s.Go("waiter", func(tc *TaskCtl) {
		tc.WaitUntil(func() bool { return ready })
		got = append(got, "woke")
	})
	s.Go("setter", func(tc *TaskCtl) {
		tc.Pause()
		tc.Pause()
		ready = true
		got = append(got, "set")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "set" || got[1] != "woke" {
		t.Fatalf("got = %v", got)
	}
}

func TestSchedulerWaitUntilTruePredicateDoesNotYield(t *testing.T) {
	s := NewScheduler()
	steps := 0
	s.Go("t", func(tc *TaskCtl) {
		tc.WaitUntil(func() bool { return true })
		tc.WaitUntil(nil)
		steps++
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if steps != 1 {
		t.Fatalf("steps = %d", steps)
	}
}

func TestSchedulerDeadlockDetection(t *testing.T) {
	s := NewScheduler()
	s.Go("blocked1", func(tc *TaskCtl) {
		tc.WaitUntil(func() bool { return false })
	})
	s.Go("blocked2", func(tc *TaskCtl) {
		tc.WaitUntil(func() bool { return false })
	})
	err := s.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	var de DeadlockError
	if !errors.As(err, &de) || len(de.Blocked) != 2 {
		t.Fatalf("DeadlockError = %v", err)
	}
}

func TestSchedulerPanicStopsRun(t *testing.T) {
	s := NewScheduler()
	s.Go("bad", func(tc *TaskCtl) { panic("task panic") })
	err := s.Run()
	var pe PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
}

func TestSchedulerTaskSpawnsTask(t *testing.T) {
	s := NewScheduler()
	var order []string
	s.Go("parent", func(tc *TaskCtl) {
		order = append(order, "parent")
		s.Go("child", func(tc2 *TaskCtl) {
			order = append(order, "child")
		})
		tc.Pause()
		order = append(order, "parent-after")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "parent" || order[1] != "child" {
		t.Fatalf("order = %v", order)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSchedulerSharedStateWithoutLocks(t *testing.T) {
	// The cooperative model's guarantee: tasks interleave only at yields,
	// so read-modify-write across a Pause is the only hazard; plain
	// increments are atomic with respect to other tasks.
	s := NewScheduler()
	counter := 0
	for i := 0; i < 10; i++ {
		s.Go("inc", func(tc *TaskCtl) {
			for j := 0; j < 100; j++ {
				counter++ // safe: no preemption without a yield
				if j%10 == 0 {
					tc.Pause()
				}
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if counter != 1000 {
		t.Fatalf("counter = %d, want 1000", counter)
	}
}

func TestSchedulerTaskAccessors(t *testing.T) {
	s := NewScheduler()
	task := s.Go("named", func(tc *TaskCtl) {})
	if task.Name() != "named" || task.Done() {
		t.Fatalf("task = %+v", task)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !task.Done() || task.Err() != nil {
		t.Fatalf("after run: done=%v err=%v", task.Done(), task.Err())
	}
}

func TestSchedulerProducerConsumer(t *testing.T) {
	// Bounded-buffer in the cooperative model: no locks, only WaitUntil.
	s := NewScheduler()
	var buf []int
	const capN, items = 3, 20
	var consumed []int
	s.Go("producer", func(tc *TaskCtl) {
		for i := 0; i < items; i++ {
			tc.WaitUntil(func() bool { return len(buf) < capN })
			buf = append(buf, i)
		}
	})
	s.Go("consumer", func(tc *TaskCtl) {
		for len(consumed) < items {
			tc.WaitUntil(func() bool { return len(buf) > 0 })
			consumed = append(consumed, buf[0])
			buf = buf[1:]
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range consumed {
		if v != i {
			t.Fatalf("consumed = %v", consumed)
		}
	}
}

func TestSchedulerRunTwice(t *testing.T) {
	s := NewScheduler()
	n := 0
	s.Go("a", func(tc *TaskCtl) { n++ })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Second run with all tasks finished is a no-op.
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("n = %d", n)
	}
}
