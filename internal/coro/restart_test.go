package coro

import (
	"errors"
	"testing"
	"time"

	"repro/internal/faults"
)

func TestKillRunsDeferredCleanup(t *testing.T) {
	cleaned := false
	c := New(func(y *Yielder, _ any) any {
		defer func() { cleaned = true }()
		y.Yield(1)
		y.Yield(2)
		return nil
	})
	if _, _, err := c.Resume(nil); err != nil {
		t.Fatalf("first resume: %v", err)
	}
	err := c.Kill("injected")
	var pe PanicError
	if !errors.As(err, &pe) || pe.Value != "injected" {
		t.Fatalf("Kill error = %v, want PanicError{injected}", err)
	}
	if !cleaned {
		t.Fatal("deferred cleanup did not run inside the killed coroutine")
	}
	if c.Status() != StatusDead {
		t.Fatalf("status = %v, want dead", c.Status())
	}
}

func TestGoRestartableRecoversFromPanic(t *testing.T) {
	s := NewScheduler()
	attempts := 0 // external state: survives restarts
	var finished bool
	task := s.GoRestartable("flaky", 3, func(tc *TaskCtl) {
		attempts++
		tc.Pause()
		if attempts < 3 {
			panic("transient failure")
		}
		finished = true
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run = %v; restarts should have absorbed the panics", err)
	}
	if !finished {
		t.Fatal("task never completed")
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (body restarts from the top)", attempts)
	}
	if task.Restarts() != 2 || s.Restarts() != 2 {
		t.Fatalf("restarts = task %d / sched %d, want 2 / 2", task.Restarts(), s.Restarts())
	}
	if task.Err() == nil {
		t.Fatal("last panic should stay on record after recovery")
	}
}

func TestRestartBudgetExhaustedStopsTask(t *testing.T) {
	s := NewScheduler()
	runs := 0
	s.GoRestartable("doomed", 2, func(tc *TaskCtl) {
		runs++
		panic("always")
	})
	err := s.Run()
	var pe PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run = %v, want PanicError after budget exhaustion", err)
	}
	if runs != 3 {
		t.Fatalf("runs = %d, want 3 (initial + 2 restarts)", runs)
	}
}

func TestContinueOnPanicAggregatesErrors(t *testing.T) {
	s := NewScheduler()
	s.ContinueOnPanic = true
	var observed []string
	s.OnTaskPanic = func(t *Task, err error) { observed = append(observed, t.Name()) }
	survivorSteps := 0
	s.Go("bad-a", func(tc *TaskCtl) { tc.Pause(); panic("a") })
	s.Go("bad-b", func(tc *TaskCtl) { tc.Pause(); tc.Pause(); panic("b") })
	s.Go("survivor", func(tc *TaskCtl) {
		for i := 0; i < 5; i++ {
			survivorSteps++
			tc.Pause()
		}
	})
	err := s.Run()
	if err == nil {
		t.Fatal("Run should report the collected panics")
	}
	var pe PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("joined error %v does not expose a PanicError", err)
	}
	if survivorSteps != 5 {
		t.Fatalf("survivor ran %d steps; panics in siblings must not abort it", survivorSteps)
	}
	if len(observed) != 2 {
		t.Fatalf("OnTaskPanic saw %v, want both failing tasks", observed)
	}
}

func TestInjectedResumePanicFlowsThroughRestartPolicy(t *testing.T) {
	s := NewScheduler()
	inj := faults.Count(faults.CrashOnNth(4, faults.OnActor("worker")))
	s.SetInjector(inj)
	work := 0
	s.GoRestartable("worker", 5, func(tc *TaskCtl) {
		for work < 10 {
			work++
			tc.Pause()
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run = %v", err)
	}
	if work != 10 {
		t.Fatalf("work = %d, want 10 (restarts resume external progress)", work)
	}
	if inj.Panics() == 0 {
		t.Fatal("injector never fired")
	}
	if s.Restarts() != int(inj.Panics()) {
		t.Fatalf("restarts = %d, injected panics = %d; every injected kill should restart",
			s.Restarts(), inj.Panics())
	}
	if s.FaultsInjected() != int(inj.Panics()) {
		t.Fatalf("FaultsInjected = %d, want %d", s.FaultsInjected(), inj.Panics())
	}
	// The injected reason is identifiable on the task record.
	var ip faults.InjectedPanic
	var pe PanicError
	for _, task := range s.tasks {
		if task.Err() != nil && errors.As(task.Err(), &pe) {
			if v, ok := pe.Value.(faults.InjectedPanic); ok {
				ip = v
			}
		}
	}
	if ip.Op.Site != faults.SiteResume || ip.Op.Actor != "worker" {
		t.Fatalf("injected panic op = %+v", ip.Op)
	}
}

func TestInjectedDropSkipsRoundsWithoutDeadlock(t *testing.T) {
	s := NewScheduler()
	// Drop ~40% of resumes of "slow"; the task must still finish and the
	// skipped rounds must not be misread as a cooperative deadlock.
	s.SetInjector(faults.Drop(99, 0.4, faults.All(
		faults.AtSite(faults.SiteResume), faults.OnActor("slow"))))
	steps := 0
	s.Go("slow", func(tc *TaskCtl) {
		for i := 0; i < 20; i++ {
			steps++
			tc.Pause()
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run = %v", err)
	}
	if steps != 20 {
		t.Fatalf("steps = %d, want 20", steps)
	}
	if s.FaultsInjected() == 0 {
		t.Fatal("drop policy never fired")
	}
}

func TestInjectedResumeDelayStallsScheduler(t *testing.T) {
	s := NewScheduler()
	s.SetInjector(faults.Delay(1, 1.0, 2*time.Millisecond, faults.AtSite(faults.SiteResume)))
	s.Go("t", func(tc *TaskCtl) { tc.Pause() })
	start := time.Now()
	if err := s.Run(); err != nil {
		t.Fatalf("Run = %v", err)
	}
	if time.Since(start) < 2*time.Millisecond {
		t.Fatal("delay policy did not stall the resume")
	}
}
