package coro

// Generator combinators: the "coroutine pipeline" idiom the course's
// Python segment teaches — lazily chained stages, each a coroutine that
// pulls from its upstream on demand.

// Map returns a generator producing f of every upstream value.
func Map[T, U any](g *Generator[T], f func(T) U) *Generator[U] {
	return NewGenerator(func(yield func(U)) {
		for {
			v, ok := g.Next()
			if !ok {
				return
			}
			yield(f(v))
		}
	})
}

// Filter returns a generator passing through upstream values satisfying
// pred.
func Filter[T any](g *Generator[T], pred func(T) bool) *Generator[T] {
	return NewGenerator(func(yield func(T)) {
		for {
			v, ok := g.Next()
			if !ok {
				return
			}
			if pred(v) {
				yield(v)
			}
		}
	})
}

// Take returns a generator producing at most n upstream values.
func Take[T any](g *Generator[T], n int) *Generator[T] {
	return NewGenerator(func(yield func(T)) {
		for i := 0; i < n; i++ {
			v, ok := g.Next()
			if !ok {
				return
			}
			yield(v)
		}
	})
}

// Naturals generates 0, 1, 2, ... forever.
func Naturals() *Generator[int] {
	return NewGenerator(func(yield func(int)) {
		for i := 0; ; i++ {
			yield(i)
		}
	})
}

// Primes generates prime numbers with the classic generator-chaining sieve
// of Eratosthenes: each discovered prime adds a Filter stage — a pipeline
// of coroutines growing as it runs.
func Primes() *Generator[int] {
	return NewGenerator(func(yield func(int)) {
		src := NewGenerator(func(y2 func(int)) {
			for i := 2; ; i++ {
				y2(i)
			}
		})
		for {
			p, ok := src.Next()
			if !ok {
				return
			}
			yield(p)
			prime := p
			src = Filter(src, func(v int) bool { return v%prime != 0 })
		}
	})
}
