package coro

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/faults"
)

// Scheduler is a cooperative round-robin scheduler over coroutine tasks —
// the "cooperative form" in which the course's Test 2 implements the
// single-lane bridge. Exactly one task runs at a time and control changes
// hands only at Pause/WaitUntil points, so tasks may share data without
// locks; that freedom from data races (at the cost of explicit scheduling
// points) is the coroutine model's trade-off the course examines.
type Scheduler struct {
	// ContinueOnPanic keeps Run going when an unrestartable task panics:
	// the task is marked done with its error and the remaining tasks keep
	// running. Run then returns the joined panic errors at the end instead
	// of aborting on the first one.
	ContinueOnPanic bool
	// OnTaskPanic, when set, observes every task panic (before any restart
	// decision). It runs on the scheduler goroutine between task steps.
	OnTaskPanic func(t *Task, err error)

	tasks    []*Task
	running  bool
	inj      faults.Injector
	restarts int
	injected int
	panics   []error
	obs      *schedObs
}

// Task is a cooperative task managed by a Scheduler.
type Task struct {
	name string
	co   *Coroutine
	// blocked, when non-nil, must return true before the task is resumed.
	blocked func() bool
	done    bool
	err     error
	// Restart policy (GoRestartable): body is kept to rebuild the coroutine
	// after a panic, up to maxRestarts times.
	body        func(tc *TaskCtl)
	maxRestarts int
	restarts    int
}

// Name returns the task's name.
func (t *Task) Name() string { return t.name }

// Done reports whether the task's body has returned.
func (t *Task) Done() bool { return t.done }

// Err returns the task's most recent panic error, if its body panicked.
// A restarted task keeps the last panic on record even while running again.
func (t *Task) Err() error { return t.err }

// Restarts returns how many times the task has been restarted after panics.
func (t *Task) Restarts() int { return t.restarts }

// TaskCtl is passed to task bodies to yield control.
type TaskCtl struct {
	y *Yielder
	t *Task
}

// Pause yields to the scheduler; the task resumes on a later round.
func (tc *TaskCtl) Pause() {
	tc.y.Yield(nil)
}

// WaitUntil yields to the scheduler until pred() is true. pred is evaluated
// by the scheduler between task steps (never concurrently with any task),
// so it may read shared state freely.
func (tc *TaskCtl) WaitUntil(pred func() bool) {
	if pred == nil || pred() {
		return
	}
	tc.t.blocked = pred
	tc.y.Yield(nil)
}

// ErrDeadlock is returned by Run when every unfinished task is blocked on a
// condition that no task can make true — the cooperative analogue of the
// deadlock concurrency issue from the course.
var ErrDeadlock = errors.New("coro: cooperative deadlock: all tasks blocked")

// DeadlockError carries the names of the blocked tasks.
type DeadlockError struct{ Blocked []string }

func (e DeadlockError) Error() string {
	return fmt.Sprintf("%v (tasks: %v)", ErrDeadlock, e.Blocked)
}

// Is reports that a DeadlockError matches ErrDeadlock for errors.Is.
func (e DeadlockError) Is(target error) bool { return target == ErrDeadlock }

// NewScheduler returns an empty scheduler, instrumented with the
// process-wide default registry if SetDefaultInstrument installed one.
func NewScheduler() *Scheduler {
	s := &Scheduler{}
	if d := defaultInstrument.Load(); d != nil {
		s.Instrument(d.reg, d.prefix)
	}
	return s
}

// Go registers a task. Tasks may be added before Run or by a running task.
func (s *Scheduler) Go(name string, body func(tc *TaskCtl)) *Task {
	t := &Task{name: name, body: body}
	t.rebuild()
	s.tasks = append(s.tasks, t)
	return t
}

// GoRestartable registers a task with a restart policy: if its body panics
// (or a fault injector kills it at a resume point), the scheduler rebuilds
// the coroutine from body and runs it again from the top, up to maxRestarts
// times. The body restarts from its beginning — any state it must survive
// a restart has to live outside the body (the same contract as a supervised
// actor's external state).
func (s *Scheduler) GoRestartable(name string, maxRestarts int, body func(tc *TaskCtl)) *Task {
	t := s.Go(name, body)
	t.maxRestarts = maxRestarts
	return t
}

// rebuild creates a fresh coroutine from the task's stored body, clearing
// any blocked predicate from the previous incarnation.
func (t *Task) rebuild() {
	body := t.body
	t.co = New(func(y *Yielder, _ any) any {
		body(&TaskCtl{y: y, t: t})
		return nil
	})
	t.blocked = nil
}

// SetInjector installs a fault injector consulted at faults.SiteResume
// (with the task's name as Op.Actor) before every resume. ActDelay stalls
// the scheduler; ActDrop skips the task for one round; ActPanic kills the
// task at its current yield point as if its body had panicked — which then
// flows through the task's restart policy like any real panic.
func (s *Scheduler) SetInjector(inj faults.Injector) { s.inj = inj }

// Restarts returns the total number of task restarts performed by Run.
func (s *Scheduler) Restarts() int { return s.restarts }

// FaultsInjected returns how many injector decisions (delays, drops,
// panics) Run has acted on.
func (s *Scheduler) FaultsInjected() int { return s.injected }

// Len returns the number of registered tasks (finished ones included until
// the next Run sweeps them).
func (s *Scheduler) Len() int { return len(s.tasks) }

// Run drives all tasks round-robin until every task completes. It returns
// DeadlockError if all remaining tasks are blocked. A task panic restarts
// the task if it has restart budget (GoRestartable); otherwise Run returns
// the PanicError immediately — or, with ContinueOnPanic, records it, keeps
// the other tasks running, and returns the joined errors at the end.
func (s *Scheduler) Run() error {
	if s.running {
		return errors.New("coro: scheduler already running")
	}
	s.running = true
	s.panics = nil
	defer func() { s.running = false }()
	for {
		live := 0
		ready := 0
		progressed := false
		// Iterate by index: tasks may append via Go during the loop.
		for i := 0; i < len(s.tasks); i++ {
			t := s.tasks[i]
			if t.done {
				continue
			}
			live++
			if t.blocked != nil {
				if !t.blocked() {
					continue
				}
				t.blocked = nil
			}
			ready++
			var resumeVal any
			if s.inj != nil {
				op := faults.Op{Site: faults.SiteResume, Actor: t.name}
				switch d := s.inj.Decide(op); d.Action {
				case faults.ActDelay:
					s.injected++
					time.Sleep(d.Delay)
				case faults.ActDrop:
					// Skip this task for one round. Counts as progress so a
					// drop-heavy round is not mistaken for a deadlock.
					s.injected++
					progressed = true
					continue
				case faults.ActPanic:
					s.injected++
					resumeVal = killSignal{reason: faults.InjectedPanic{Op: op}}
				}
			}
			timer := s.obs.resumeTimer()
			_, done, err := t.co.Resume(resumeVal)
			timer.Stop()
			progressed = true
			if err != nil {
				t.err = err
				if s.OnTaskPanic != nil {
					s.OnTaskPanic(t, err)
				}
				if t.restarts < t.maxRestarts {
					t.restarts++
					s.restarts++
					t.rebuild()
					continue
				}
				t.done = true
				if s.ContinueOnPanic {
					s.panics = append(s.panics, fmt.Errorf("coro: task %q: %w", t.name, err))
					continue
				}
				return err
			}
			if done {
				t.done = true
			}
		}
		s.obs.roundDone(ready, live)
		if live == 0 {
			return errors.Join(s.panics...)
		}
		if !progressed {
			var blocked []string
			for _, t := range s.tasks {
				if !t.done {
					blocked = append(blocked, t.name)
				}
			}
			return DeadlockError{Blocked: blocked}
		}
	}
}
