package coro

import (
	"errors"
	"fmt"
)

// Scheduler is a cooperative round-robin scheduler over coroutine tasks —
// the "cooperative form" in which the course's Test 2 implements the
// single-lane bridge. Exactly one task runs at a time and control changes
// hands only at Pause/WaitUntil points, so tasks may share data without
// locks; that freedom from data races (at the cost of explicit scheduling
// points) is the coroutine model's trade-off the course examines.
type Scheduler struct {
	tasks   []*Task
	running bool
}

// Task is a cooperative task managed by a Scheduler.
type Task struct {
	name string
	co   *Coroutine
	// blocked, when non-nil, must return true before the task is resumed.
	blocked func() bool
	done    bool
	err     error
}

// Name returns the task's name.
func (t *Task) Name() string { return t.name }

// Done reports whether the task's body has returned.
func (t *Task) Done() bool { return t.done }

// Err returns the task's panic error, if its body panicked.
func (t *Task) Err() error { return t.err }

// TaskCtl is passed to task bodies to yield control.
type TaskCtl struct {
	y *Yielder
	t *Task
}

// Pause yields to the scheduler; the task resumes on a later round.
func (tc *TaskCtl) Pause() {
	tc.y.Yield(nil)
}

// WaitUntil yields to the scheduler until pred() is true. pred is evaluated
// by the scheduler between task steps (never concurrently with any task),
// so it may read shared state freely.
func (tc *TaskCtl) WaitUntil(pred func() bool) {
	if pred == nil || pred() {
		return
	}
	tc.t.blocked = pred
	tc.y.Yield(nil)
}

// ErrDeadlock is returned by Run when every unfinished task is blocked on a
// condition that no task can make true — the cooperative analogue of the
// deadlock concurrency issue from the course.
var ErrDeadlock = errors.New("coro: cooperative deadlock: all tasks blocked")

// DeadlockError carries the names of the blocked tasks.
type DeadlockError struct{ Blocked []string }

func (e DeadlockError) Error() string {
	return fmt.Sprintf("%v (tasks: %v)", ErrDeadlock, e.Blocked)
}

// Is reports that a DeadlockError matches ErrDeadlock for errors.Is.
func (e DeadlockError) Is(target error) bool { return target == ErrDeadlock }

// NewScheduler returns an empty scheduler.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Go registers a task. Tasks may be added before Run or by a running task.
func (s *Scheduler) Go(name string, body func(tc *TaskCtl)) *Task {
	t := &Task{name: name}
	t.co = New(func(y *Yielder, _ any) any {
		body(&TaskCtl{y: y, t: t})
		return nil
	})
	s.tasks = append(s.tasks, t)
	return t
}

// Len returns the number of registered tasks (finished ones included until
// the next Run sweeps them).
func (s *Scheduler) Len() int { return len(s.tasks) }

// Run drives all tasks round-robin until every task completes. It returns
// DeadlockError if all remaining tasks are blocked, or the first task
// panic as a PanicError.
func (s *Scheduler) Run() error {
	if s.running {
		return errors.New("coro: scheduler already running")
	}
	s.running = true
	defer func() { s.running = false }()
	for {
		live := 0
		progressed := false
		// Iterate by index: tasks may append via Go during the loop.
		for i := 0; i < len(s.tasks); i++ {
			t := s.tasks[i]
			if t.done {
				continue
			}
			live++
			if t.blocked != nil {
				if !t.blocked() {
					continue
				}
				t.blocked = nil
			}
			_, done, err := t.co.Resume(nil)
			progressed = true
			if err != nil {
				t.done = true
				t.err = err
				return err
			}
			if done {
				t.done = true
			}
		}
		if live == 0 {
			return nil
		}
		if !progressed {
			var blocked []string
			for _, t := range s.tasks {
				if !t.done {
					blocked = append(blocked, t.name)
				}
			}
			return DeadlockError{Blocked: blocked}
		}
	}
}
