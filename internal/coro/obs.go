package coro

import (
	"sync/atomic"

	"repro/internal/metrics"
)

// schedObs is the Scheduler's optional instrumentation (Instrument). The
// scheduler itself is strictly single-threaded, so the only concession to
// concurrency is that the two gauges are atomic mirrors: a metrics snapshot
// reads them from another goroutine while Run is mid-round.
type schedObs struct {
	resume *metrics.LatencyHistogram
	tick   uint64       // resumes so far, the sampling counter (scheduler-only)
	ready  atomic.Int64 // resumable tasks observed in the last round
	live   atomic.Int64 // unfinished tasks observed in the last round
}

// resumeSampleRate: one in this many resumes is timed. Resume steps can be
// sub-microsecond in tight generator loops, where an unconditional clock
// pair would dominate; sampling keeps the p50/p95/p99 readable while the
// instrumented scheduler stays within noise of the plain one.
const resumeSampleRate = 16

// Instrument registers the scheduler's observability series in reg:
//
//	prefix.resume_ns    histogram of task resume-step durations (sampled)
//	prefix.ready.depth  gauge: resumable (unblocked, unfinished) tasks in
//	                    the last completed scheduling round
//	prefix.tasks.live   gauge: unfinished tasks in the last completed round
//
// Call before Run; the naming scheme is docs/OBSERVABILITY.md. A nil reg
// removes instrumentation.
func (s *Scheduler) Instrument(reg *metrics.Registry, prefix string) {
	if reg == nil {
		s.obs = nil
		return
	}
	o := &schedObs{resume: reg.Histogram(prefix + ".resume_ns")}
	reg.Gauge(prefix+".ready.depth", o.ready.Load)
	reg.Gauge(prefix+".tasks.live", o.live.Load)
	s.obs = o
}

// defaultInstrument is the process-wide fallback adopted by NewScheduler;
// see SetDefaultInstrument.
var defaultInstrument atomic.Pointer[defaultInstr]

type defaultInstr struct {
	reg    *metrics.Registry
	prefix string
}

// SetDefaultInstrument makes every subsequent NewScheduler call Instrument
// itself with reg and prefix, so the CLI binaries' -metrics flags can reach
// schedulers created deep inside a workload. All such schedulers feed the
// same prefix.resume_ns histogram; the two gauges track whichever scheduler
// was created last (a run that wants per-scheduler gauges calls Instrument
// itself). A nil reg restores the uninstrumented default.
func SetDefaultInstrument(reg *metrics.Registry, prefix string) {
	if reg == nil {
		defaultInstrument.Store(nil)
		return
	}
	defaultInstrument.Store(&defaultInstr{reg: reg, prefix: prefix})
}

// resumeTimer starts a sampled timing for one resume step. The returned
// Timer is a no-op unless this resume is the one-in-resumeSampleRate pick.
func (o *schedObs) resumeTimer() metrics.Timer {
	if o == nil {
		return metrics.Timer{}
	}
	tick := o.tick
	o.tick++
	if tick%resumeSampleRate != 0 {
		return metrics.Timer{}
	}
	return o.resume.Start()
}

// roundDone publishes the round's gauge values. Safe on nil.
func (o *schedObs) roundDone(ready, live int) {
	if o == nil {
		return
	}
	o.ready.Store(int64(ready))
	o.live.Store(int64(live))
}
