// Package coro implements the coroutine model the course teaches with
// Python, following the taxonomy of de Moura & Ierusalimschy ("Revisiting
// Coroutines", the paper's reference [5]): coroutines here are
//
//   - first-class: Coroutine values can be stored, passed, and resumed
//     from anywhere;
//   - stackful: a coroutine may suspend from within nested calls, because
//     each coroutine runs on its own (goroutine) stack;
//   - both asymmetric (Resume/Yield, like Lua and Python generators) and
//     symmetric (Transfer, via the trampoline in symmetric.go).
//
// Per the paper's quoted definition [4]: local data persists between
// successive calls, and execution resumes exactly where it left off.
package coro

import (
	"errors"
	"fmt"
	"sync"
)

// Status is a coroutine's lifecycle state, mirroring Lua's
// coroutine.status values.
type Status int

const (
	// StatusSuspended: created but not started, or has yielded.
	StatusSuspended Status = iota
	// StatusRunning: currently executing.
	StatusRunning
	// StatusNormal: resumed another coroutine and is waiting for it.
	StatusNormal
	// StatusDead: body returned or panicked.
	StatusDead
)

func (s Status) String() string {
	switch s {
	case StatusSuspended:
		return "suspended"
	case StatusRunning:
		return "running"
	case StatusNormal:
		return "normal"
	case StatusDead:
		return "dead"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Errors returned by Resume.
var (
	ErrDead    = errors.New("coro: cannot resume dead coroutine")
	ErrRunning = errors.New("coro: cannot resume non-suspended coroutine")
)

// PanicError wraps a panic raised inside a coroutine body; Resume returns it
// and the coroutine becomes dead.
type PanicError struct{ Value any }

func (e PanicError) Error() string { return fmt.Sprintf("coro: coroutine panicked: %v", e.Value) }

// Body is a coroutine's code. in is the value passed to the first Resume;
// the return value becomes the final Resume's result. Call y.Yield to
// suspend.
type Body func(y *Yielder, in any) any

// message is the handshake payload between Resume and Yield.
type message struct {
	val  any
	done bool  // body returned
	err  error // body panicked
}

// Coroutine is a first-class stackful coroutine. Create with New, drive
// with Resume. A Coroutine must only be resumed by one goroutine at a time
// (enforced: concurrent Resume returns ErrRunning rather than corrupting
// the handshake).
type Coroutine struct {
	body    Body
	in      chan any
	out     chan message
	started bool

	mu     sync.Mutex
	status Status
}

// New creates a suspended coroutine that will run body when first resumed.
func New(body Body) *Coroutine {
	if body == nil {
		panic("coro: nil body")
	}
	return &Coroutine{
		body:   body,
		in:     make(chan any),
		out:    make(chan message),
		status: StatusSuspended,
	}
}

// Status returns the coroutine's current lifecycle state.
func (c *Coroutine) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.status
}

func (c *Coroutine) setStatus(s Status) {
	c.mu.Lock()
	c.status = s
	c.mu.Unlock()
}

// Resume transfers control to the coroutine, passing v (delivered as the
// body's `in` on first resume, or as Yield's return value subsequently).
// It returns the value the coroutine yields or returns. done is true when
// the body has returned (the coroutine is dead).
func (c *Coroutine) Resume(v any) (out any, done bool, err error) {
	c.mu.Lock()
	switch c.status {
	case StatusDead:
		c.mu.Unlock()
		return nil, true, ErrDead
	case StatusRunning, StatusNormal:
		c.mu.Unlock()
		return nil, false, ErrRunning
	}
	c.status = StatusRunning
	first := !c.started
	c.started = true
	c.mu.Unlock()

	if first {
		go c.run()
	}
	c.in <- v
	m := <-c.out
	if m.done || m.err != nil {
		c.setStatus(StatusDead)
	} else {
		c.setStatus(StatusSuspended)
	}
	return m.val, m.done || m.err != nil, m.err
}

func (c *Coroutine) run() {
	in := <-c.in
	y := &Yielder{c: c}
	defer func() {
		if r := recover(); r != nil {
			c.out <- message{err: PanicError{Value: r}}
		}
	}()
	if k, ok := in.(killSignal); ok {
		panic(k.reason)
	}
	ret := c.body(y, in)
	c.out <- message{val: ret, done: true}
}

// killSignal is a poison resume value: when a suspended coroutine receives
// it, the panic is raised *inside* the coroutine body at its current yield
// point, so deferred cleanup runs and the coroutine dies cleanly (its
// goroutine exits) instead of leaking parked on the resume channel.
type killSignal struct{ reason any }

// Kill resumes the coroutine with a poison value that panics inside the
// body with the given reason. The resulting PanicError (wrapping reason) is
// returned; the coroutine is dead afterwards. Killing an unstarted
// coroutine starts and immediately fails it.
func (c *Coroutine) Kill(reason any) error {
	_, _, err := c.Resume(killSignal{reason: reason})
	return err
}

// Yielder is the in-coroutine capability to suspend. It is only valid
// inside the owning coroutine's body.
type Yielder struct{ c *Coroutine }

// Yield suspends the coroutine, delivering v to the pending Resume, and
// blocks until resumed again; it returns the value passed to that Resume.
func (y *Yielder) Yield(v any) any {
	y.c.out <- message{val: v}
	in := <-y.c.in
	if k, ok := in.(killSignal); ok {
		panic(k.reason)
	}
	return in
}

// Drain runs the coroutine to completion from its current state, collecting
// every yielded value and the final return value. resumeWith is passed to
// every Resume.
func (c *Coroutine) Drain(resumeWith any) (yields []any, ret any, err error) {
	for {
		v, done, rerr := c.Resume(resumeWith)
		if rerr != nil {
			return yields, nil, rerr
		}
		if done {
			return yields, v, nil
		}
		yields = append(yields, v)
	}
}
