package coro

// Generator adapts a coroutine to Python-generator-style iteration: the
// producer calls yield(v) for each element; consumers call Next.
type Generator[T any] struct {
	co *Coroutine
}

// NewGenerator creates a generator from a producer function. The producer
// runs lazily: nothing executes until the first Next.
func NewGenerator[T any](producer func(yield func(T))) *Generator[T] {
	co := New(func(y *Yielder, _ any) any {
		producer(func(v T) { y.Yield(v) })
		return nil
	})
	return &Generator[T]{co: co}
}

// Next returns the next generated value. ok is false when the producer has
// returned (and the zero T is returned).
func (g *Generator[T]) Next() (v T, ok bool) {
	out, done, err := g.co.Resume(nil)
	if err != nil || done {
		var zero T
		return zero, false
	}
	return out.(T), true
}

// Collect drains the generator into a slice.
func (g *Generator[T]) Collect() []T {
	var out []T
	for {
		v, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// Stop abandons the generator. Further Next calls return ok=false.
// The producer goroutine is left parked; it is collected when the
// generator becomes unreachable only if the producer has finished, so
// prefer draining generators in long-lived processes.
func (g *Generator[T]) Stop() {
	g.co.setStatus(StatusDead)
}
