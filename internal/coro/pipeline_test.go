package coro

import (
	"reflect"
	"testing"
)

func TestMapFilterTakePipeline(t *testing.T) {
	squaredEvens := Take(Map(Filter(Naturals(),
		func(v int) bool { return v%2 == 0 }),
		func(v int) int { return v * v }),
		5)
	got := squaredEvens.Collect()
	want := []int{0, 4, 16, 36, 64}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pipeline = %v, want %v", got, want)
	}
}

func TestPipelineLaziness(t *testing.T) {
	pulls := 0
	src := NewGenerator(func(yield func(int)) {
		for i := 0; ; i++ {
			pulls++
			yield(i)
		}
	})
	taken := Take(src, 3)
	if pulls != 0 {
		t.Fatal("pipeline ran eagerly")
	}
	taken.Collect()
	if pulls != 3 {
		t.Fatalf("pulled %d values from an infinite source, want exactly 3", pulls)
	}
}

func TestTakeMoreThanAvailable(t *testing.T) {
	src := NewGenerator(func(yield func(int)) {
		yield(1)
		yield(2)
	})
	got := Take(src, 10).Collect()
	if !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("got %v", got)
	}
}

func TestFilterAll(t *testing.T) {
	src := NewGenerator(func(yield func(int)) {
		for i := 0; i < 5; i++ {
			yield(i)
		}
	})
	got := Filter(src, func(int) bool { return false }).Collect()
	if len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestPrimesSieve(t *testing.T) {
	got := Take(Primes(), 10).Collect()
	want := []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("primes = %v, want %v", got, want)
	}
}

func TestMapTypeChange(t *testing.T) {
	src := NewGenerator(func(yield func(int)) {
		yield(1)
		yield(2)
	})
	got := Map(src, func(v int) string {
		return string(rune('a' + v))
	}).Collect()
	if !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Fatalf("got %v", got)
	}
}
