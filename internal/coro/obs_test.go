package coro

import (
	"testing"

	"repro/internal/metrics"
)

func TestSchedulerInstrument(t *testing.T) {
	reg := metrics.NewRegistry()
	s := NewScheduler()
	s.Instrument(reg, "coro")

	shared := 0
	for i := 0; i < 4; i++ {
		s.Go("worker", func(tc *TaskCtl) {
			for j := 0; j < 50; j++ {
				shared++
				tc.Pause()
			}
		})
	}
	s.Go("waiter", func(tc *TaskCtl) {
		tc.WaitUntil(func() bool { return shared >= 200 })
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}

	// 5 tasks × ~50 resumes ≫ the 1-in-16 sampling rate: the histogram
	// must have fired.
	h := reg.Histogram("coro.resume_ns")
	if h.Count() == 0 {
		t.Fatal("no resume samples recorded")
	}
	// After the final round everything is done: both gauges read 0.
	if v, ok := reg.Get("coro.ready.depth"); !ok || v != 0 {
		t.Fatalf("ready.depth = %d, %v; want 0 after Run", v, ok)
	}
	if v, ok := reg.Get("coro.tasks.live"); !ok || v != 0 {
		t.Fatalf("tasks.live = %d, %v; want 0 after Run", v, ok)
	}
	if shared != 200 {
		t.Fatalf("shared = %d, want 200", shared)
	}
}

func TestSchedulerGaugesTrackBlockedTasks(t *testing.T) {
	reg := metrics.NewRegistry()
	s := NewScheduler()
	s.Instrument(reg, "coro")

	var readyMid, liveMid int64
	release := false
	s.Go("blocked", func(tc *TaskCtl) {
		tc.WaitUntil(func() bool { return release })
	})
	s.Go("runner", func(tc *TaskCtl) {
		for i := 0; i < 5; i++ {
			tc.Pause()
		}
		// Mid-run snapshot: the blocked task is live but not ready.
		readyMid, _ = reg.Get("coro.ready.depth")
		liveMid, _ = reg.Get("coro.tasks.live")
		release = true
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if liveMid != 2 {
		t.Fatalf("mid-run tasks.live = %d, want 2", liveMid)
	}
	if readyMid != 1 {
		t.Fatalf("mid-run ready.depth = %d, want 1 (blocked task excluded)", readyMid)
	}
}

func TestSchedulerUninstrumentedRuns(t *testing.T) {
	s := NewScheduler()
	n := 0
	s.Go("t", func(tc *TaskCtl) {
		for i := 0; i < 3; i++ {
			n++
			tc.Pause()
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("n = %d", n)
	}
}
