package coro

import "errors"

// transferReq is the control message a symmetric coroutine yields to the
// trampoline to hand control directly to another coroutine.
type transferReq struct {
	target *Coroutine
	val    any
}

// ErrTransferOutside is returned by RunSymmetric when a coroutine yields a
// plain value instead of transferring; symmetric coroutines must end by
// returning, not yielding.
var ErrTransferOutside = errors.New("coro: symmetric coroutine yielded without Transfer")

// Transfer suspends the current coroutine and passes control (and v)
// directly to target, implementing symmetric coroutines on top of the
// asymmetric pair via the RunSymmetric trampoline (the standard
// construction from de Moura & Ierusalimschy). The call returns when some
// coroutine transfers back to this one, with the transferred value.
func (y *Yielder) Transfer(target *Coroutine, v any) any {
	return y.Yield(transferReq{target: target, val: v})
}

// RunSymmetric drives a web of symmetric coroutines starting at entry,
// passing v to it. Control moves between coroutines only via
// y.Transfer; the run ends when the currently running coroutine returns.
// It returns that coroutine's return value.
func RunSymmetric(entry *Coroutine, v any) (any, error) {
	cur := entry
	for {
		out, done, err := cur.Resume(v)
		if err != nil {
			return nil, err
		}
		if done {
			return out, nil
		}
		req, ok := out.(transferReq)
		if !ok {
			return nil, ErrTransferOutside
		}
		// The transferring coroutine is parked inside its Yield and was
		// already marked suspended by Resume; just switch control.
		cur = req.target
		v = req.val
	}
}
