package coro

import "testing"

func BenchmarkResumeYield(b *testing.B) {
	co := New(func(y *Yielder, _ any) any {
		for {
			y.Yield(nil)
		}
	})
	for i := 0; i < b.N; i++ {
		if _, _, err := co.Resume(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCreateAndFinish(b *testing.B) {
	for i := 0; i < b.N; i++ {
		co := New(func(y *Yielder, in any) any { return in })
		if _, _, err := co.Resume(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	g := NewGenerator(func(yield func(int)) {
		for i := 0; ; i++ {
			yield(i)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Next(); !ok {
			b.Fatal("generator ended")
		}
	}
}

func BenchmarkSymmetricTransfer(b *testing.B) {
	// Two coroutines transferring back and forth b.N times under the
	// trampoline.
	n := b.N
	var c1, c2 *Coroutine
	c1 = New(func(y *Yielder, in any) any {
		for i := 0; i < n; i++ {
			y.Transfer(c2, nil)
		}
		return nil
	})
	c2 = New(func(y *Yielder, in any) any {
		for {
			y.Transfer(c1, nil)
		}
	})
	b.ResetTimer()
	if _, err := RunSymmetric(c1, nil); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSchedulerRoundRobin(b *testing.B) {
	s := NewScheduler()
	const tasks = 8
	perTask := b.N/tasks + 1
	for t := 0; t < tasks; t++ {
		s.Go("t", func(tc *TaskCtl) {
			for i := 0; i < perTask; i++ {
				tc.Pause()
			}
		})
	}
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSchedulerWaitUntil(b *testing.B) {
	s := NewScheduler()
	turn := 0
	n := b.N
	s.Go("a", func(tc *TaskCtl) {
		for i := 0; i < n; i++ {
			tc.WaitUntil(func() bool { return turn == 0 })
			turn = 1
		}
	})
	s.Go("b", func(tc *TaskCtl) {
		for i := 0; i < n; i++ {
			tc.WaitUntil(func() bool { return turn == 1 })
			turn = 0
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}
