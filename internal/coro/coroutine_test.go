package coro

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func TestResumeYieldRoundTrip(t *testing.T) {
	co := New(func(y *Yielder, in any) any {
		a := y.Yield(in.(int) + 1)
		b := y.Yield(a.(int) + 10)
		return b.(int) + 100
	})
	v, done, err := co.Resume(1)
	if err != nil || done || v != 2 {
		t.Fatalf("first resume = %v %v %v", v, done, err)
	}
	v, done, err = co.Resume(2)
	if err != nil || done || v != 12 {
		t.Fatalf("second resume = %v %v %v", v, done, err)
	}
	v, done, err = co.Resume(3)
	if err != nil || !done || v != 103 {
		t.Fatalf("final resume = %v %v %v", v, done, err)
	}
}

func TestLocalStatePersistsAcrossYields(t *testing.T) {
	// The defining coroutine property from the paper's reference [4]:
	// "values of data local to a coroutine persist between successive calls".
	co := New(func(y *Yielder, _ any) any {
		counter := 0
		for i := 0; i < 5; i++ {
			counter += 10
			y.Yield(counter)
		}
		return counter
	})
	want := []int{10, 20, 30, 40, 50}
	for _, w := range want {
		v, done, err := co.Resume(nil)
		if err != nil || done || v != w {
			t.Fatalf("got %v %v %v, want %d", v, done, err, w)
		}
	}
	v, done, err := co.Resume(nil)
	if err != nil || !done || v != 50 {
		t.Fatalf("final = %v %v %v", v, done, err)
	}
}

func TestResumeDeadCoroutine(t *testing.T) {
	co := New(func(y *Yielder, _ any) any { return "done" })
	if _, done, err := co.Resume(nil); err != nil || !done {
		t.Fatal("body should complete on first resume")
	}
	if _, _, err := co.Resume(nil); err != ErrDead {
		t.Fatalf("err = %v, want ErrDead", err)
	}
	if co.Status() != StatusDead {
		t.Fatalf("status = %v, want dead", co.Status())
	}
}

func TestStatusTransitions(t *testing.T) {
	inBody := make(chan struct{})
	release := make(chan struct{})
	co := New(func(y *Yielder, _ any) any {
		close(inBody)
		<-release
		y.Yield(1)
		return 2
	})
	if co.Status() != StatusSuspended {
		t.Fatalf("initial status = %v", co.Status())
	}
	go func() {
		<-inBody
		if s := co.Status(); s != StatusRunning {
			t.Errorf("status while executing = %v, want running", s)
		}
		close(release)
	}()
	co.Resume(nil) // returns at first yield
	if co.Status() != StatusSuspended {
		t.Fatalf("status after yield = %v", co.Status())
	}
	co.Resume(nil)
	if co.Status() != StatusDead {
		t.Fatalf("status after return = %v", co.Status())
	}
}

func TestResumeRunningCoroutineFails(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	co := New(func(y *Yielder, _ any) any {
		close(entered)
		<-release
		return nil
	})
	errCh := make(chan error, 1)
	go func() {
		_, _, err := co.Resume(nil)
		errCh <- err
	}()
	<-entered
	if _, _, err := co.Resume(nil); err != ErrRunning {
		t.Fatalf("concurrent resume err = %v, want ErrRunning", err)
	}
	close(release)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

func TestPanicPropagatesAsError(t *testing.T) {
	co := New(func(y *Yielder, _ any) any {
		y.Yield("ok")
		panic("kaboom")
	})
	if _, _, err := co.Resume(nil); err != nil {
		t.Fatal(err)
	}
	_, done, err := co.Resume(nil)
	if !done {
		t.Fatal("panicked coroutine should be done")
	}
	var pe PanicError
	if !errors.As(err, &pe) || pe.Value != "kaboom" {
		t.Fatalf("err = %v, want PanicError{kaboom}", err)
	}
	if co.Status() != StatusDead {
		t.Fatal("panicked coroutine should be dead")
	}
	if _, _, err := co.Resume(nil); err != ErrDead {
		t.Fatalf("resume after panic = %v, want ErrDead", err)
	}
}

func TestNilBodyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(nil) should panic")
		}
	}()
	New(nil)
}

func TestDrain(t *testing.T) {
	co := New(func(y *Yielder, _ any) any {
		y.Yield(1)
		y.Yield(2)
		return 3
	})
	yields, ret, err := co.Drain(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(yields) != 2 || yields[0] != 1 || yields[1] != 2 || ret != 3 {
		t.Fatalf("Drain = %v, %v", yields, ret)
	}
}

func TestDrainPanicking(t *testing.T) {
	co := New(func(y *Yielder, _ any) any {
		y.Yield(1)
		panic("x")
	})
	yields, _, err := co.Drain(nil)
	if len(yields) != 1 || err == nil {
		t.Fatalf("Drain = %v, %v", yields, err)
	}
}

func TestStackfulSuspendFromNestedCall(t *testing.T) {
	// A stackful coroutine can yield from inside nested function calls —
	// issue (3) in the paper's coroutine classification.
	var leaf func(y *Yielder, depth int)
	leaf = func(y *Yielder, depth int) {
		if depth == 0 {
			y.Yield("bottom")
			return
		}
		leaf(y, depth-1)
	}
	co := New(func(y *Yielder, _ any) any {
		leaf(y, 10)
		return "top"
	})
	v, done, err := co.Resume(nil)
	if err != nil || done || v != "bottom" {
		t.Fatalf("nested yield = %v %v %v", v, done, err)
	}
	v, done, err = co.Resume(nil)
	if err != nil || !done || v != "top" {
		t.Fatalf("completion = %v %v %v", v, done, err)
	}
}

func TestFirstClassCoroutinesInDataStructures(t *testing.T) {
	// Coroutines stored in a slice and resumed in arbitrary order.
	cos := make([]*Coroutine, 3)
	for i := range cos {
		i := i
		cos[i] = New(func(y *Yielder, _ any) any {
			y.Yield(i * 100)
			return i
		})
	}
	for _, order := range [][]int{{2, 0, 1}} {
		for _, idx := range order {
			v, _, err := cos[idx].Resume(nil)
			if err != nil || v != idx*100 {
				t.Fatalf("cos[%d] = %v %v", idx, v, err)
			}
		}
	}
}

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		StatusSuspended: "suspended",
		StatusRunning:   "running",
		StatusNormal:    "normal",
		StatusDead:      "dead",
		Status(42):      "Status(42)",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestPanicErrorMessage(t *testing.T) {
	e := PanicError{Value: 7}
	if e.Error() != "coro: coroutine panicked: 7" {
		t.Fatalf("message = %q", e.Error())
	}
}

// Property: a pass-through coroutine returns exactly the values passed in.
func TestPassThroughQuick(t *testing.T) {
	f := func(vals []int64) bool {
		co := New(func(y *Yielder, in any) any {
			cur := in
			for {
				next := y.Yield(cur)
				if next == nil {
					return cur
				}
				cur = next
			}
		})
		if len(vals) == 0 {
			return true
		}
		for i, v := range vals {
			out, done, err := co.Resume(v)
			if err != nil || done || out != v {
				return false
			}
			_ = i
		}
		_, done, err := co.Resume(nil)
		return done && err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func ExampleCoroutine() {
	co := New(func(y *Yielder, in any) any {
		fmt.Println("got", in)
		reply := y.Yield("first")
		fmt.Println("got", reply)
		return "done"
	})
	v, _, _ := co.Resume("hello")
	fmt.Println("yielded", v)
	v, done, _ := co.Resume("world")
	fmt.Println("returned", v, done)
	// Output:
	// got hello
	// yielded first
	// got world
	// returned done true
}
