// Package obs puts the observability surfaces on HTTP: a live Prometheus
// scrape of a metrics.Registry and an on-demand pull of a trace.Recorder's
// flight window as a Chrome trace. It exists as its own small package so
// the runtimes (actors, threads, coro, remote) stay import-free of net/http
// — they expose registries and recorders; this package serves them.
package obs

import (
	"fmt"
	"net"
	"net/http"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Handler returns an http.Handler serving the debug endpoints:
//
//	/debug/metrics          Prometheus text exposition of reg
//	/debug/flight           Chrome trace JSON of rec's retained events
//	/debug/flight?format=text   the same events, one human-readable line each
//
// Load /debug/flight into Perfetto (ui.perfetto.dev) or chrome://tracing.
// Either argument may be nil; its endpoint then answers 503 so a probe can
// tell "not wired" from "empty". The handler takes snapshots per request —
// scraping never blocks the hot paths beyond what Snapshot itself costs.
func Handler(reg *metrics.Registry, rec *trace.Recorder) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		if reg == nil {
			http.Error(w, "no metrics registry configured", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// Headers are gone; all we can do is note it for the client log.
			fmt.Fprintf(w, "# write error: %v\n", err)
		}
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		if rec == nil {
			http.Error(w, "no trace recorder configured", http.StatusServiceUnavailable)
			return
		}
		events := rec.Events()
		switch r.URL.Query().Get("format") {
		case "", "chrome":
			w.Header().Set("Content-Type", "application/json")
			if err := trace.ExportChrome(w, events); err != nil {
				fmt.Fprintf(w, "\n# export error: %v\n", err)
			}
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, e := range events {
				fmt.Fprintln(w, e.String())
			}
		default:
			http.Error(w, "format must be chrome or text", http.StatusBadRequest)
		}
	})
	return mux
}

// Serve starts Handler on addr in a background goroutine and returns the
// server (for Close) and its resolved listen address. This is the one-liner
// the cmd/ binaries use behind their -debug flags.
func Serve(addr string, reg *metrics.Registry, rec *trace.Recorder) (*http.Server, string, error) {
	srv := &http.Server{Handler: Handler(reg, rec)}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
