// Package obs puts the observability surfaces on HTTP: a live Prometheus
// scrape of a metrics.Registry and an on-demand pull of a trace.Recorder's
// flight window as a Chrome trace. It exists as its own small package so
// the runtimes (actors, threads, coro, remote) stay import-free of net/http
// — they expose registries and recorders; this package serves them.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Debug bundles the surfaces the debug endpoints serve. Every field is
// optional; a nil field's endpoint answers 503 so a probe can tell "not
// wired" from "empty".
type Debug struct {
	// Registry backs /debug/metrics (Prometheus text exposition).
	Registry *metrics.Registry
	// Recorder backs /debug/flight (flight-recorder events as a Chrome
	// trace or text).
	Recorder *trace.Recorder
	// Tracer backs /debug/trace (recent distributed traces: stage
	// breakdowns, per-actor attribution, Perfetto export).
	Tracer *trace.Tracer
	// Cluster backs /debug/cluster. It returns this node's cluster
	// introspection snapshot (cluster.Introspection in practice — typed as
	// a closure so this package stays import-free of internal/cluster), and
	// the result is served as JSON.
	Cluster func() any
}

// Handler returns an http.Handler serving the metrics and flight-recorder
// endpoints — the original two-surface form, kept for callers that predate
// the tracing and cluster surfaces. See DebugHandler.
func Handler(reg *metrics.Registry, rec *trace.Recorder) http.Handler {
	return DebugHandler(Debug{Registry: reg, Recorder: rec})
}

// DebugHandler returns an http.Handler serving the debug endpoints:
//
//	/debug/metrics          Prometheus text exposition of the registry
//	/debug/flight           Chrome trace JSON of the recorder's retained events
//	/debug/flight?format=text   the same events, one human-readable line each
//	/debug/trace            recent distributed traces, slowest first (JSON)
//	/debug/trace?format=chrome  the same traces as a Perfetto span timeline
//	/debug/trace?format=text    stage breakdown, one line per span
//	/debug/trace?n=N            cap the trace list (default 20)
//	/debug/cluster          membership, shard map, grains, links (JSON)
//
// Load the chrome formats into Perfetto (ui.perfetto.dev) or
// chrome://tracing. The handler takes snapshots per request — scraping never
// blocks the hot paths beyond what the snapshot itself costs.
func DebugHandler(d Debug) http.Handler {
	reg, rec := d.Registry, d.Recorder
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		if reg == nil {
			http.Error(w, "no metrics registry configured", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// Headers are gone; all we can do is note it for the client log.
			fmt.Fprintf(w, "# write error: %v\n", err)
		}
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		if rec == nil {
			http.Error(w, "no trace recorder configured", http.StatusServiceUnavailable)
			return
		}
		events := rec.Events()
		switch r.URL.Query().Get("format") {
		case "", "chrome":
			w.Header().Set("Content-Type", "application/json")
			if err := trace.ExportChrome(w, events); err != nil {
				fmt.Fprintf(w, "\n# export error: %v\n", err)
			}
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, e := range events {
				fmt.Fprintln(w, e.String())
			}
		default:
			http.Error(w, "format must be chrome or text", http.StatusBadRequest)
		}
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if d.Tracer == nil {
			http.Error(w, "no tracer configured", http.StatusServiceUnavailable)
			return
		}
		spans := d.Tracer.Spans()
		traces := trace.AssembleTraces(spans)
		limit := 20
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				limit = v
			}
		}
		shown := traces
		if len(shown) > limit {
			shown = shown[:limit]
		}
		switch r.URL.Query().Get("format") {
		case "", "json":
			w.Header().Set("Content-Type", "application/json")
			names := trace.StageNames()
			resp := traceResponse{
				Node:        d.Tracer.NodeName(),
				SampleEvery: d.Tracer.SampleEvery(),
				SpansPushed: d.Tracer.Total(),
				Traces:      len(traces),
				Stages:      names[:],
				Slowest:     make([]traceSummary, 0, len(shown)),
				Attribution: trace.AttributeStages(spans),
			}
			for _, tv := range shown {
				resp.Slowest = append(resp.Slowest, summarize(tv))
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(resp)
		case "chrome":
			w.Header().Set("Content-Type", "application/json")
			if err := trace.ExportChromeSpans(w, shown, nil); err != nil {
				fmt.Fprintf(w, "\n# export error: %v\n", err)
			}
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, tv := range shown {
				fmt.Fprintf(w, "trace %016x  %s  hops=%d nodes=%d coverage=%.2f",
					tv.Trace, tv.Duration(), len(tv.Spans), len(tv.Nodes), tv.Coverage())
				if tv.Dead > 0 {
					fmt.Fprintf(w, " dead=%d", tv.Dead)
				}
				fmt.Fprintln(w)
				for _, s := range tv.Spans {
					fmt.Fprintf(w, "  %s %s ← %s", s.Node, s.Actor, s.Msg)
					for i, dur := range s.Stages {
						if dur > 0 {
							fmt.Fprintf(w, "  %s=%s", trace.SpanStage(i), time.Duration(dur))
						}
					}
					fmt.Fprintln(w)
				}
			}
		default:
			http.Error(w, "format must be json, chrome, or text", http.StatusBadRequest)
		}
	})
	mux.HandleFunc("/debug/cluster", func(w http.ResponseWriter, r *http.Request) {
		if d.Cluster == nil {
			http.Error(w, "no cluster configured", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(d.Cluster())
	})
	return mux
}

// traceResponse is the /debug/trace JSON shape.
type traceResponse struct {
	Node        string                   `json:"node"`
	SampleEvery int                      `json:"sample_every"`
	SpansPushed uint64                   `json:"spans_pushed"`
	Traces      int                      `json:"traces"`
	Stages      []string                 `json:"stages"`
	Slowest     []traceSummary           `json:"slowest"`
	Attribution []trace.ActorAttribution `json:"attribution"`
}

// traceSummary is one assembled trace with its stage rollup, durations in
// nanoseconds like every other latency surface in the repo.
type traceSummary struct {
	Trace      string           `json:"trace"`
	DurationNS int64            `json:"duration_ns"`
	Hops       int              `json:"hops"`
	Nodes      []string         `json:"nodes"`
	CrossNode  bool             `json:"cross_node"`
	Complete   bool             `json:"complete"`
	Coverage   float64          `json:"coverage"`
	StagesNS   map[string]int64 `json:"stages_ns"`
	Dead       int              `json:"dead,omitempty"`
	Spans      []trace.SpanView `json:"spans"`
}

func summarize(tv trace.TraceView) traceSummary {
	ts := traceSummary{
		Trace:      fmt.Sprintf("%016x", tv.Trace),
		DurationNS: int64(tv.Duration()),
		Hops:       len(tv.Spans),
		Nodes:      tv.Nodes,
		CrossNode:  tv.CrossNode(),
		Complete:   tv.Complete(),
		Coverage:   tv.Coverage(),
		StagesNS:   map[string]int64{},
		Dead:       tv.Dead,
		Spans:      tv.Spans,
	}
	for i, d := range tv.StageNS {
		if d > 0 {
			ts.StagesNS[trace.SpanStage(i).String()] = d
		}
	}
	return ts
}

// Serve starts Handler on addr in a background goroutine and returns the
// server (for Close) and its resolved listen address. This is the one-liner
// the cmd/ binaries use behind their -debug flags.
func Serve(addr string, reg *metrics.Registry, rec *trace.Recorder) (*http.Server, string, error) {
	return ServeDebug(addr, Debug{Registry: reg, Recorder: rec})
}

// ServeDebug is Serve for the full four-surface Debug bundle.
func ServeDebug(addr string, d Debug) (*http.Server, string, error) {
	srv := &http.Server{Handler: DebugHandler(d)}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
