package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// promFamily is one metric family reconstructed by the strict parser.
type promFamily struct {
	help    string
	kind    string
	samples []promSample
}

type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePromStrict is a full validator for the Prometheus text exposition
// format (version 0.0.4), stricter than promtool's lint in the ways this
// repo has been bitten: it requires a # HELP and # TYPE line per family
// (HELP first), rejects duplicate declarations, verifies metric and label
// names against the format's alphabet, and decodes label-value escapes —
// so an unescaped quote or backslash in a label value fails the scrape
// instead of silently corrupting it.
func parsePromStrict(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	fams := map[string]*promFamily{}
	var current string
	validName := func(s string) bool {
		for i, r := range s {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			case r >= '0' && r <= '9':
				if i == 0 {
					return false
				}
			default:
				return false
			}
		}
		return len(s) > 0
	}
	// unquoteLabel decodes exactly the three escapes the format defines.
	unquoteLabel := func(s string) (string, bool) {
		var b strings.Builder
		for i := 0; i < len(s); i++ {
			c := s[i]
			switch c {
			case '\\':
				i++
				if i >= len(s) {
					return "", false
				}
				switch s[i] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return "", false
				}
			case '"', '\n':
				return "", false
			default:
				b.WriteByte(c)
			}
		}
		return b.String(), true
	}
	familyOf := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if f, ok := fams[base]; ok && f.kind == "histogram" {
				return base
			}
		}
		return name
	}
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, found := strings.Cut(rest, " ")
			if !found || !validName(name) {
				t.Fatalf("bad HELP line %q", line)
			}
			if _, dup := fams[name]; dup {
				t.Fatalf("duplicate HELP for %q", name)
			}
			if strings.ContainsAny(help, "\n") || strings.Contains(help, `\`) &&
				!strings.Contains(help, `\\`) && !strings.Contains(help, `\n`) {
				t.Fatalf("unescaped HELP text in %q", line)
			}
			fams[name] = &promFamily{help: help}
			current = name
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, found := strings.Cut(rest, " ")
			if !found || !validName(name) {
				t.Fatalf("bad TYPE line %q", line)
			}
			f, ok := fams[name]
			if !ok {
				t.Fatalf("TYPE %q precedes its HELP line", name)
			}
			if f.kind != "" {
				t.Fatalf("duplicate TYPE for %q", name)
			}
			switch kind {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("bad kind in %q", line)
			}
			f.kind = kind
			current = name
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment: legal, ignored
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("no value separator in %q", line)
		}
		series, valStr := line[:sp], line[sp+1:]
		s := promSample{name: series, labels: map[string]string{}}
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("unbalanced labels in %q", line)
			}
			s.name = series[:i]
			body := series[i+1 : len(series)-1]
			for _, pair := range strings.Split(body, ",") {
				k, v, ok := strings.Cut(pair, "=")
				if !ok || !validName(k) {
					t.Fatalf("bad label pair %q in %q", pair, line)
				}
				if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
					t.Fatalf("unquoted label value %q in %q", v, line)
				}
				dec, ok := unquoteLabel(v[1 : len(v)-1])
				if !ok {
					t.Fatalf("bad label escaping in %q", line)
				}
				s.labels[k] = dec
			}
		}
		if !validName(s.name) {
			t.Fatalf("illegal metric name %q in %q", s.name, line)
		}
		var err error
		if s.value, err = strconv.ParseFloat(valStr, 64); err != nil {
			t.Fatalf("bad value %q in %q: %v", valStr, line, err)
		}
		fam := familyOf(s.name)
		f, ok := fams[fam]
		if !ok || f.kind == "" {
			t.Fatalf("sample %q precedes its HELP/TYPE declarations", line)
		}
		if fam != current {
			t.Fatalf("sample %q interleaves into family %q while %q is open", line, fam, current)
		}
		f.samples = append(f.samples, s)
	}
	return fams
}

// TestMetricsEndpointStrictScrape is the regression test for the exposition
// fixes: every family scraped from /debug/metrics must carry HELP and TYPE
// lines, histogram buckets must be cumulative with le values that parse
// after unescaping, and the HELP docstring must round the sanitized name
// back to the dotted registry name.
func TestMetricsEndpointStrictScrape(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("strict.deadletters").Add(5)
	reg.Gauge("strict.links", func() int64 { return 2 })
	h := reg.Histogram("strict.wait_ns")
	h.Observe(200 * time.Nanosecond)
	h.Observe(70 * time.Microsecond)
	h.Observe(2 * time.Millisecond)

	srv := httptest.NewServer(Handler(reg, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams := parsePromStrict(t, string(body))

	c, ok := fams["strict_deadletters"]
	if !ok || c.kind != "counter" || c.help != "strict.deadletters" {
		t.Fatalf("counter family wrong: %+v", c)
	}
	if len(c.samples) != 1 || c.samples[0].value != 5 {
		t.Fatalf("counter samples wrong: %+v", c.samples)
	}
	if g := fams["strict_links"]; g == nil || g.kind != "gauge" || g.samples[0].value != 2 {
		t.Fatalf("gauge family wrong: %+v", g)
	}
	hist, ok := fams["strict_wait_ns"]
	if !ok || hist.kind != "histogram" {
		t.Fatalf("histogram family missing: %v", fams)
	}
	var prev float64
	var sawInf, sawSum, sawCount bool
	for _, s := range hist.samples {
		switch s.name {
		case "strict_wait_ns_bucket":
			le, ok := s.labels["le"]
			if !ok {
				t.Fatalf("bucket sample without le: %+v", s)
			}
			if le == "+Inf" {
				sawInf = true
				if s.value != 3 {
					t.Fatalf("+Inf bucket = %v, want 3", s.value)
				}
			} else if _, err := strconv.ParseFloat(le, 64); err != nil {
				t.Fatalf("unparseable le %q", le)
			}
			if s.value < prev {
				t.Fatalf("buckets not cumulative at le=%s", le)
			}
			prev = s.value
		case "strict_wait_ns_sum":
			sawSum = true
		case "strict_wait_ns_count":
			sawCount = true
			if s.value != 3 {
				t.Fatalf("count = %v, want 3", s.value)
			}
		default:
			t.Fatalf("unexpected histogram sample %q", s.name)
		}
	}
	if !sawInf || !sawSum || !sawCount {
		t.Fatalf("histogram family incomplete: inf=%v sum=%v count=%v", sawInf, sawSum, sawCount)
	}
}

// TestClusterEndpointServesSnapshot pins the /debug/cluster contract: the
// handler serves whatever the closure returns as indented JSON, and answers
// 503 when no cluster is wired.
func TestClusterEndpointServesSnapshot(t *testing.T) {
	type snap struct {
		Addr    string `json:"addr"`
		Quorate bool   `json:"quorate"`
	}
	srv := httptest.NewServer(DebugHandler(Debug{
		Cluster: func() any { return snap{Addr: "node-a:1", Quorate: true} },
	}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	for _, want := range []string{`"addr": "node-a:1"`, `"quorate": true`} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("cluster snapshot missing %q:\n%s", want, body)
		}
	}
	bare := httptest.NewServer(DebugHandler(Debug{}))
	defer bare.Close()
	for _, path := range []string{"/debug/cluster", "/debug/trace"} {
		resp, err := http.Get(bare.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s status = %d, want 503", path, resp.StatusCode)
		}
	}
}
