package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

func testRegistry() *metrics.Registry {
	reg := metrics.NewRegistry()
	reg.Counter("actors.deadletters").Add(3)
	reg.Gauge("actors.live", func() int64 { return 7 })
	h := reg.Histogram("actors.handler_ns")
	h.Observe(500 * time.Nanosecond)
	h.Observe(3 * time.Microsecond)
	return reg
}

// promLine accepts the two sample shapes WritePrometheus emits: bare
// "name value" and histogram buckets "name{le=\"...\"} value".
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? -?[0-9.+Ife]+$`)

func TestMetricsEndpointIsParseablePrometheus(t *testing.T) {
	srv := httptest.NewServer(Handler(testRegistry(), nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q is not the Prometheus text exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, found := strings.Cut(rest, " ")
			if !found || (kind != "counter" && kind != "gauge" && kind != "histogram") {
				t.Fatalf("bad TYPE line %q", line)
			}
			typed[name] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("unparseable sample line %q", line)
		}
		// Every sample must belong to a declared family (histograms add
		// _bucket/_sum/_count to their family name).
		name := line[:strings.IndexAny(line, "{ ")]
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base = strings.TrimSuffix(base, suf)
		}
		if !typed[name] && !typed[base] {
			t.Fatalf("sample %q precedes its # TYPE declaration", name)
		}
	}
	for _, want := range []string{"actors_deadletters 3", "actors_live 7", "actors_handler_ns_count 2"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("output missing %q:\n%s", want, body)
		}
	}
}

func TestFlightEndpointServesChromeTrace(t *testing.T) {
	rec := trace.NewFlightRecorder(16)
	rec.Record("worker-1", trace.KindAcquire, "mutex", "")
	rec.Record("worker-2", trace.KindFault, "deadlock", "cycle suspected")
	srv := httptest.NewServer(Handler(nil, rec))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("flight output is not Chrome trace JSON: %v", err)
	}
	var faults int
	for _, e := range doc.TraceEvents {
		if e.Phase == "i" && strings.HasPrefix(e.Name, "fault") {
			faults++
		}
	}
	if faults != 1 {
		t.Fatalf("want the recorded fault in the trace, got %d fault events", faults)
	}

	text, err := http.Get(srv.URL + "/debug/flight?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer text.Body.Close()
	b, _ := io.ReadAll(text.Body)
	if !strings.Contains(string(b), "deadlock") {
		t.Fatalf("text dump missing recorded event:\n%s", b)
	}
}

func TestUnwiredEndpointsAnswer503(t *testing.T) {
	srv := httptest.NewServer(Handler(nil, nil))
	defer srv.Close()
	for _, path := range []string{"/debug/metrics", "/debug/flight"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s status = %d, want 503", path, resp.StatusCode)
		}
	}
}

func TestServeBindsAndAnswers(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", testRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
