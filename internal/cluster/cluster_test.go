package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/actors"
	"repro/internal/remote"
)

// Test message types cross the wire, so exported fields + gob registration.

// WhoAmI asks a grain which node hosts it.
type WhoAmI struct{}

// HostedAt is the reply: the grain's name and its host node address.
type HostedAt struct {
	Grain string
	Node  string
}

// Inc is one idempotent client operation: client Client's Seq'th increment.
type Inc struct {
	Client int
	Seq    int
}

// IncAck acknowledges an Inc.
type IncAck struct {
	Seq int
}

func init() {
	remote.RegisterType(WhoAmI{})
	remote.RegisterType(HostedAt{})
	remote.RegisterType(Inc{})
	remote.RegisterType(IncAck{})
}

// testFixture is a MemNetwork cluster with fast liveness clocks.
type testFixture struct {
	net   *remote.MemNetwork
	nodes map[string]*Cluster
}

// echoFactory hosts grains that report their host node.
func echoFactory(addr string) GrainFactory {
	return func(name string) actors.Behavior {
		return func(ctx *actors.Context, msg any) {
			if _, ok := msg.(WhoAmI); ok {
				ctx.Reply(HostedAt{Grain: name, Node: addr})
			}
		}
	}
}

// ledger records every Inc any grain instance ever processed, deduplicated
// by (client, seq). It is shared across activations — including the
// reactivation after a handoff — so the test can count distinct deliveries
// exactly even though grain-local state dies with the grain.
type ledger struct {
	mu   sync.Mutex
	seen map[[2]int]int // (client, seq) → deliveries
}

func newLedger() *ledger { return &ledger{seen: map[[2]int]int{}} }

func (l *ledger) record(client, seq int) {
	l.mu.Lock()
	l.seen[[2]int{client, seq}]++
	l.mu.Unlock()
}

func (l *ledger) distinct() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.seen)
}

// counterFactory hosts idempotent counter grains backed by the shared ledger.
func counterFactory(l *ledger) GrainFactory {
	return func(name string) actors.Behavior {
		return func(ctx *actors.Context, msg any) {
			if inc, ok := msg.(Inc); ok {
				l.record(inc.Client, inc.Seq)
				ctx.Reply(IncAck{Seq: inc.Seq})
			}
		}
	}
}

// startCluster builds a fixture with the given addresses, all seeded with
// each other. factory(addr) supplies each node's grain factory.
func startCluster(t *testing.T, addrs []string, factory func(addr string) GrainFactory) *testFixture {
	t.Helper()
	net := remote.NewMemNetwork()
	f := &testFixture{net: net, nodes: map[string]*Cluster{}}
	for i, addr := range addrs {
		c, err := New(Config{
			ListenAddr:        addr,
			Transport:         net.Endpoint(addr),
			Seeds:             addrs,
			Shards:            32,
			Grain:             factory(addr),
			HeartbeatInterval: 2 * time.Millisecond,
			SuspectAfter:      60 * time.Millisecond,
			Seed:              int64(i + 1),
		})
		if err != nil {
			t.Fatalf("cluster %s: %v", addr, err)
		}
		f.nodes[addr] = c
	}
	t.Cleanup(func() {
		for _, c := range f.nodes {
			c.Close()
		}
	})
	return f
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// converged reports whether every node sees every address alive.
func (f *testFixture) converged() bool {
	for _, c := range f.nodes {
		ms, _ := c.Members()
		alive := 0
		for _, m := range ms {
			if m.State == StateAlive {
				alive++
			}
		}
		if alive != len(f.nodes) {
			return false
		}
	}
	return true
}

var testRetry = actors.RetryConfig{
	Attempts:   200,
	Timeout:    250 * time.Millisecond,
	Backoff:    time.Millisecond,
	MaxBackoff: 20 * time.Millisecond,
	Jitter:     0.2,
	Budget:     30 * time.Second,
}

func TestClusterFormsAndPlacesGrains(t *testing.T) {
	addrs := []string{"n1", "n2", "n3"}
	f := startCluster(t, addrs, echoFactory)
	waitUntil(t, 5*time.Second, "membership convergence", f.converged)

	// Placement must agree across every node's view.
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("user-%d", i)
		want, ok := f.nodes["n1"].OwnerOf(name)
		if !ok {
			t.Fatalf("no owner for %s", name)
		}
		for _, c := range f.nodes {
			if got, _ := c.OwnerOf(name); got != want {
				t.Fatalf("%s: %s places %s on %s, n1 on %s", name, c.Addr(), name, got, want)
			}
		}
	}

	// Asks from one node activate each grain on its ring owner, wherever
	// that is — the proxy is location-transparent.
	c1 := f.nodes["n1"]
	hostedOn := map[string]int{}
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("user-%d", i)
		rep, err := actors.AskRetry(c1.System(), c1.RefFor(name), WhoAmI{}, testRetry)
		if err != nil {
			t.Fatalf("ask %s: %v", name, err)
		}
		at, ok := rep.(HostedAt)
		if !ok || at.Grain != name {
			t.Fatalf("ask %s replied %#v", name, rep)
		}
		want, _ := c1.OwnerOf(name)
		if at.Node != want {
			t.Fatalf("%s activated on %s, ring says %s", name, at.Node, want)
		}
		hostedOn[at.Node]++
	}
	if len(hostedOn) < 2 {
		t.Fatalf("64 grains all landed on one node: %v", hostedOn)
	}
	// The shard counts add up: every shard has exactly one owner.
	total := 0
	for _, c := range f.nodes {
		total += len(c.OwnedShards())
	}
	if total != 32 {
		t.Fatalf("owned shards across nodes = %d, want 32", total)
	}
}

func TestSingleActivationAcrossNodes(t *testing.T) {
	addrs := []string{"n1", "n2", "n3"}
	f := startCluster(t, addrs, echoFactory)
	waitUntil(t, 5*time.Second, "membership convergence", f.converged)

	// The same grain asked from all three nodes activates exactly once.
	const name = "user-shared"
	for _, c := range f.nodes {
		if _, err := actors.AskRetry(c.System(), c.RefFor(name), WhoAmI{}, testRetry); err != nil {
			t.Fatalf("ask from %s: %v", c.Addr(), err)
		}
	}
	var activations int64
	hosts := 0
	for _, c := range f.nodes {
		activations += c.CounterSnapshot().Activations
		for _, g := range c.ActiveGrains() {
			if g == name {
				hosts++
			}
		}
	}
	if activations != 1 || hosts != 1 {
		t.Fatalf("activations = %d, hosting nodes = %d, want 1/1", activations, hosts)
	}
}

func TestPassivationAndReactivation(t *testing.T) {
	net := remote.NewMemNetwork()
	var c *Cluster
	c, err := New(Config{
		ListenAddr:        "solo",
		Transport:         net.Endpoint("solo"),
		Shards:            8,
		Grain:             echoFactory("solo"),
		HeartbeatInterval: 2 * time.Millisecond,
		PassivateAfter:    30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := actors.AskRetry(c.System(), c.RefFor("idle-grain"), WhoAmI{}, testRetry); err != nil {
		t.Fatal(err)
	}
	if got := c.CounterSnapshot().Activations; got != 1 {
		t.Fatalf("activations = %d, want 1", got)
	}
	waitUntil(t, 5*time.Second, "passivation", func() bool {
		return c.CounterSnapshot().Passivations == 1 && len(c.ActiveGrains()) == 0
	})
	// The next message transparently reactivates.
	if _, err := actors.AskRetry(c.System(), c.RefFor("idle-grain"), WhoAmI{}, testRetry); err != nil {
		t.Fatal(err)
	}
	if got := c.CounterSnapshot().Activations; got != 2 {
		t.Fatalf("activations after reactivation = %d, want 2", got)
	}
}

func TestSoloNodeIsQuorate(t *testing.T) {
	net := remote.NewMemNetwork()
	c, err := New(Config{
		ListenAddr:        "solo",
		Transport:         net.Endpoint("solo"),
		Shards:            8,
		Grain:             echoFactory("solo"),
		HeartbeatInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Quorate() {
		t.Fatal("a single-node cluster must host (1 of 1 alive)")
	}
	if got := len(c.OwnedShards()); got != 8 {
		t.Fatalf("solo node owns %d/8 shards", got)
	}
}
