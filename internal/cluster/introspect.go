package cluster

import "repro/internal/remote"

// Introspection is one node's full cluster view, snapshotted for the
// /debug/cluster endpoint (internal/obs): who this node believes is in the
// ring, how the shard space maps onto them, what it is hosting, and the
// health of the links it would forward over. Everything is JSON-tagged
// because the sole consumer is an HTTP debug surface; nothing here is a
// stable machine API.
type Introspection struct {
	Addr    string       `json:"addr"`
	Epoch   uint64       `json:"epoch"`
	Quorate bool         `json:"quorate"`
	Members []MemberInfo `json:"members"`
	// Shards is the full shard map under this node's view; entries whose
	// owner is unknown (no live candidate) have an empty owner.
	Shards       []ShardInfo       `json:"shards"`
	OwnedShards  int               `json:"owned_shards"`
	ActiveGrains []string          `json:"active_grains"`
	Parked       int               `json:"parked"`
	Counters     Counters          `json:"counters"`
	Links        []remote.LinkInfo `json:"links"`
}

// MemberInfo is one membership-table row, with the state rendered for
// humans.
type MemberInfo struct {
	Addr  string `json:"addr"`
	Inc   uint64 `json:"inc"`
	State string `json:"state"`
}

// ShardInfo is one shard's placement under this node's view.
type ShardInfo struct {
	Shard int    `json:"shard"`
	Owner string `json:"owner,omitempty"`
	State string `json:"state,omitempty"` // owner's membership state
	Self  bool   `json:"self,omitempty"`  // owned by this node
}

// Introspect snapshots the node's cluster state. Consistency is per-section
// (membership, grains, links are each snapshotted under their own lock), which
// is exactly what a debug endpoint scraped mid-rebalance can promise.
func (c *Cluster) Introspect() Introspection {
	members, epoch := c.mem.snapshot()
	out := Introspection{
		Addr:         c.addr,
		Epoch:        epoch,
		Quorate:      c.mem.quorate(),
		Members:      make([]MemberInfo, 0, len(members)),
		Shards:       make([]ShardInfo, 0, c.cfg.Shards),
		ActiveGrains: c.ActiveGrains(),
		Counters:     c.CounterSnapshot(),
		Links:        c.node.Links(),
	}
	for _, m := range members {
		out.Members = append(out.Members, MemberInfo{Addr: m.Addr, Inc: m.Inc, State: m.State.String()})
	}
	for shard := 0; shard < c.cfg.Shards; shard++ {
		si := ShardInfo{Shard: shard}
		if owner, state, ok := c.mem.ownerOf(shard); ok {
			si.Owner, si.State, si.Self = owner, state.String(), owner == c.addr
			if si.Self {
				out.OwnedShards++
			}
		}
		out.Shards = append(out.Shards, si)
	}
	c.gmu.RLock()
	for _, q := range c.pending {
		out.Parked += len(q)
	}
	c.gmu.RUnlock()
	return out
}
