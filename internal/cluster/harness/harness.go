// Package harness is the cluster load harness: it boots a local 3–5 node
// cluster over the in-process transport, multiplexes a large population of
// simulated chat/presence clients onto a fixed set of presence grains, and
// measures three things the cluster layer promises:
//
//   - steady-state throughput (acked operations and wire frames per second),
//   - tail latency while a rebalance is in flight (one node killed mid-load),
//   - recovery time: from the kill to the first successful operation against
//     a grain the dead node was hosting.
//
// cmd/loadgen is the CLI wrapper (full-scale runs, committed baseline in
// BENCH_cluster.json); benchtables -cluster runs the same harness at smoke
// scale. Clients are simulated: each is an ID whose presence updates ride
// AskRetry against its grain, driven by a bounded worker pool — a million
// clients is a million distinct IDs acknowledged end to end, not a million
// goroutines.
package harness

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/actors"
	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/remote"
	"repro/internal/trace"
)

// Presence is one simulated client's presence update: client Client's Seq'th
// heartbeat to its presence grain.
type Presence struct {
	Client int64
	Seq    int64
}

// PresenceAck acknowledges a presence update.
type PresenceAck struct {
	Seq int64
}

func init() {
	remote.RegisterType(Presence{})
	remote.RegisterType(PresenceAck{})
}

// Config sizes one harness run.
type Config struct {
	Nodes        int   // cluster size, clamped to [3, 5]
	Clients      int64 // simulated client population (distinct IDs)
	Grains       int   // presence grains the clients multiplex onto
	Workers      int   // driver goroutines (bounded concurrency)
	Shards       int   // ring size
	RebalanceOps int64 // operations driven through the kill window
	Kill         bool  // kill one node after the steady phase
	Seed         int64
	// HeartbeatInterval / HeartbeatTimeout / SuspectAfter shape failure
	// detection (and hence recovery time); zero takes defaults scaled for a
	// saturated local run — the timeout in particular must outlast the
	// scheduler stalls a full-throttle worker pool inflicts on the link
	// goroutines, or false suspicions thrash the ring mid-measurement.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	SuspectAfter      time.Duration
	// TraceSample, when > 0, turns on distributed tracing on every node:
	// 1 in TraceSample client operations originates a trace context that
	// rides the envelope across forwards, handoffs and the wire, and the
	// report gains a Trace section (assembled cross-node traces, slowest
	// first, with per-stage attribution). 1 traces every operation.
	TraceSample int
}

func (c Config) withDefaults() Config {
	if c.Nodes < 3 {
		c.Nodes = 3
	}
	if c.Nodes > 5 {
		c.Nodes = 5
	}
	if c.Clients <= 0 {
		c.Clients = 100_000
	}
	if c.Grains <= 0 {
		c.Grains = 1024
	}
	if int64(c.Grains) > c.Clients {
		c.Grains = int(c.Clients)
	}
	if c.Workers <= 0 {
		c.Workers = 128
	}
	if c.Shards <= 0 {
		c.Shards = 128
	}
	if c.RebalanceOps <= 0 {
		c.RebalanceOps = c.Clients / 5
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 20 * time.Millisecond
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 250 * time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 500 * time.Millisecond
	}
	return c
}

// Report is one harness run's measurements.
type Report struct {
	Nodes   int   `json:"nodes"`
	Clients int64 `json:"clients"`
	Grains  int   `json:"grains"`
	Workers int   `json:"workers"`

	SteadyOps      int64         `json:"steadyOps"`
	SteadyRate     float64       `json:"steadyOpsPerSec"`
	SteadyWireRate float64       `json:"steadyWireMsgsPerSec"`
	SteadyP50      time.Duration `json:"steadyP50Ns"`
	SteadyP99      time.Duration `json:"steadyP99Ns"`

	RebalanceOps  int64         `json:"rebalanceOps"`
	RebalanceRate float64       `json:"rebalanceOpsPerSec"`
	RebalanceP99  time.Duration `json:"rebalanceP99Ns"`
	RecoveryTime  time.Duration `json:"recoveryNs"`

	Activations int64 `json:"activations"`
	Handoffs    int64 `json:"handoffs"`
	Parked      int64 `json:"parked"`
	ParkedFlush int64 `json:"parkedFlush"`
	Forwards    int64 `json:"forwards"`

	// Trace summarizes the sampled distributed traces (nil when tracing was
	// off); TraceViews carries the assembled traces themselves, slowest
	// first, for exporters (loadgen -trace-out feeds them to Perfetto) —
	// excluded from the JSON report, which wants the summary, not megabytes
	// of span ledgers.
	Trace      *TraceReport      `json:"trace,omitempty"`
	TraceViews []trace.TraceView `json:"-"`
}

// TraceReport is the report's distributed-tracing section.
type TraceReport struct {
	SampleEvery int `json:"sampleEvery"`
	// Spans is the total finished spans retained across every node's ring;
	// Traces is how many distinct traces they assemble into.
	Spans  int `json:"spans"`
	Traces int `json:"traces"`
	// CrossNode / Complete / CompleteCrossNode count traces that touched
	// more than one node, finished every retained span cleanly, and both.
	CrossNode         int `json:"crossNode"`
	Complete          int `json:"complete"`
	CompleteCrossNode int `json:"completeCrossNode"`
	// DeadSpans counts spans that deadlettered (expected during the kill
	// window: traces caught mid-handoff die as DLMoving and stay
	// inspectable).
	DeadSpans int `json:"deadSpans"`
	// Slowest lists the slowest traces with their stage rollups.
	Slowest []SlowTrace `json:"slowest"`
	// Attribution is the per-grain/per-stage latency table for the most
	// traced grains (top 10 by span count).
	Attribution []trace.ActorAttribution `json:"attribution,omitempty"`
}

// SlowTrace is one assembled trace's summary row.
type SlowTrace struct {
	Trace      string           `json:"trace"` // 16-hex TraceID
	DurationNS int64            `json:"durationNs"`
	Hops       int              `json:"hops"`
	Nodes      []string         `json:"nodes"`
	CrossNode  bool             `json:"crossNode"`
	Complete   bool             `json:"complete"`
	Coverage   float64          `json:"coverage"`
	Dead       int              `json:"dead,omitempty"`
	StagesNS   map[string]int64 `json:"stagesNs"`
}

// presenceFactory builds a presence grain: a per-grain roster size and
// message count, acked per update. State is activation-local — a rebalance
// resets it, which is the availability contract the harness measures, not a
// durability claim.
func presenceFactory(name string) actors.Behavior {
	var present, msgs int64
	return func(ctx *actors.Context, msg any) {
		if p, ok := msg.(Presence); ok {
			if p.Seq == 0 {
				present++
			}
			msgs++
			ctx.Reply(PresenceAck{Seq: p.Seq})
		}
	}
}

// Run executes one harness run and returns its report.
func Run(cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{Nodes: cfg.Nodes, Clients: cfg.Clients, Grains: cfg.Grains, Workers: cfg.Workers}

	net := remote.NewMemNetwork()
	part := faults.NewPartition()
	net.SetInjector(part)
	addrs := make([]string, cfg.Nodes)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("load-%d", i+1)
	}
	nodes := make([]*cluster.Cluster, cfg.Nodes)
	tracers := make([]*trace.Tracer, cfg.Nodes)
	for i, addr := range addrs {
		var sys *actors.System
		if cfg.TraceSample > 0 {
			// Per-node tracer: each node rings its own finished spans; the
			// collector below merges them into cross-node traces.
			tracers[i] = trace.NewTracer(cfg.TraceSample, 0)
			tracers[i].SetNode(addr)
			sys = actors.NewSystem(actors.Config{Tracer: tracers[i]})
		}
		c, err := cluster.New(cluster.Config{
			ListenAddr:        addr,
			Transport:         net.Endpoint(addr),
			Seeds:             addrs,
			System:            sys,
			Shards:            cfg.Shards,
			Grain:             presenceFactory,
			HeartbeatInterval: cfg.HeartbeatInterval,
			HeartbeatTimeout:  cfg.HeartbeatTimeout,
			SuspectAfter:      cfg.SuspectAfter,
			Seed:              cfg.Seed + int64(i),
		})
		if err != nil {
			return rep, fmt.Errorf("harness: node %s: %w", addr, err)
		}
		nodes[i] = c
		defer c.Close()
	}
	if err := waitConverged(nodes, 10*time.Second); err != nil {
		return rep, err
	}

	// Two fixed driver nodes (never killed); the victim is the last node.
	drivers := nodes[:2]
	victim := nodes[cfg.Nodes-1]
	grainName := func(g int64) string { return fmt.Sprintf("presence-%d", g) }

	// Prefetch every grain ref per driver so the hot loop holds no locks.
	refs := make([][]*actors.Ref, len(drivers))
	for d, drv := range drivers {
		refs[d] = make([]*actors.Ref, cfg.Grains)
		for g := 0; g < cfg.Grains; g++ {
			refs[d][g] = drv.RefFor(grainName(int64(g)))
		}
	}

	rc := actors.RetryConfig{
		Attempts:   200,
		Timeout:    250 * time.Millisecond,
		Backoff:    time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
		Jitter:     0.2,
		Budget:     120 * time.Second,
		Seed:       cfg.Seed,
	}

	wireSent := func() int64 {
		var n int64
		for _, c := range nodes {
			n += c.Node().Stats().Sent
		}
		return n
	}

	// drive pushes ops [lo, hi) through the worker pool: op i is client
	// (i mod Clients) updating its grain with a per-client sequence number.
	drive := func(lo, hi int64, hist *metrics.LatencyHistogram) error {
		var wg sync.WaitGroup
		var failed atomic.Int64
		var firstErr atomic.Value
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				d := w % len(drivers)
				sys := drivers[d].System()
				for i := lo + int64(w); i < hi; i += int64(cfg.Workers) {
					client := i % cfg.Clients
					seq := i / cfg.Clients
					ref := refs[d][client%int64(cfg.Grains)]
					start := time.Now()
					rep, err := actors.AskRetry(sys, ref, Presence{Client: client, Seq: seq}, rc)
					hist.Observe(time.Since(start))
					if err != nil {
						if failed.Add(1) == 1 {
							firstErr.Store(fmt.Errorf("client %d seq %d: %w", client, seq, err))
						}
						return
					}
					if ack, ok := rep.(PresenceAck); !ok || ack.Seq != seq {
						if failed.Add(1) == 1 {
							firstErr.Store(fmt.Errorf("client %d seq %d: bad ack %#v", client, seq, rep))
						}
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if n := failed.Load(); n > 0 {
			return fmt.Errorf("harness: %d workers failed; first: %v", n, firstErr.Load())
		}
		return nil
	}

	// Steady phase: every client checks in once.
	hreg := metrics.NewRegistry()
	steadyHist := hreg.Histogram("steady")
	sentBefore := wireSent()
	steadyStart := time.Now()
	if err := drive(0, cfg.Clients, steadyHist); err != nil {
		return rep, err
	}
	steadyDur := time.Since(steadyStart)
	rep.SteadyOps = cfg.Clients
	rep.SteadyRate = float64(cfg.Clients) / steadyDur.Seconds()
	rep.SteadyWireRate = float64(wireSent()-sentBefore) / steadyDur.Seconds()
	rep.SteadyP50 = steadyHist.P50()
	rep.SteadyP99 = steadyHist.P99()

	if cfg.Kill {
		// Find a grain the victim hosts, to probe recovery.
		probe := int64(-1)
		for g := int64(0); g < int64(cfg.Grains); g++ {
			if owner, ok := drivers[0].OwnerOf(grainName(g)); ok && owner == victim.Addr() {
				probe = g
				break
			}
		}
		if probe < 0 {
			return rep, fmt.Errorf("harness: victim owns no presence grain")
		}

		rebalanceHist := hreg.Histogram("rebalance")
		killAt := time.Now()
		part.Isolate(victim.Addr())

		// Recovery probe: hammer the victim's grain until it answers from its
		// new home.
		var recovered atomic.Int64
		var probeErr error
		var probeWg sync.WaitGroup
		probeWg.Add(1)
		go func() {
			defer probeWg.Done()
			prc := rc
			prc.Timeout = 50 * time.Millisecond
			_, err := actors.AskRetry(drivers[0].System(), refs[0][probe%int64(cfg.Grains)],
				Presence{Client: -1, Seq: 1}, prc)
			if err != nil {
				probeErr = err
				return
			}
			recovered.Store(int64(time.Since(killAt)))
		}()

		// The rebalance window's load: more presence updates from the same
		// population, riding through the handoff.
		rebStart := time.Now()
		if err := drive(cfg.Clients, cfg.Clients+cfg.RebalanceOps, rebalanceHist); err != nil {
			return rep, err
		}
		rebDur := time.Since(rebStart)
		probeWg.Wait()
		if probeErr != nil {
			return rep, fmt.Errorf("harness: recovery probe: %w", probeErr)
		}
		rep.RebalanceOps = cfg.RebalanceOps
		rep.RebalanceRate = float64(cfg.RebalanceOps) / rebDur.Seconds()
		rep.RebalanceP99 = rebalanceHist.P99()
		rep.RecoveryTime = time.Duration(recovered.Load())
	}

	for _, c := range nodes {
		s := c.CounterSnapshot()
		rep.Activations += s.Activations
		rep.Handoffs += s.HandoffsOut
		rep.Parked += s.Parked
		rep.ParkedFlush += s.ParkedFlush
		rep.Forwards += s.Forwards
	}
	if cfg.TraceSample > 0 {
		rep.Trace, rep.TraceViews = collectTraces(tracers, cfg.TraceSample)
	}
	return rep, nil
}

// collectTraces merges every node's span ring into cross-node traces and
// summarizes them for the report. Called after the drive phases have
// quiesced, so in-flight spans are the exception, not the rule.
func collectTraces(tracers []*trace.Tracer, sampleEvery int) (*TraceReport, []trace.TraceView) {
	var spans []trace.SpanView
	for _, tr := range tracers {
		spans = append(spans, tr.Spans()...)
	}
	views := trace.AssembleTraces(spans)
	tr := &TraceReport{SampleEvery: sampleEvery, Spans: len(spans), Traces: len(views)}
	for _, tv := range views {
		if tv.CrossNode() {
			tr.CrossNode++
		}
		if tv.Complete() {
			tr.Complete++
			if tv.CrossNode() {
				tr.CompleteCrossNode++
			}
		}
		tr.DeadSpans += tv.Dead
	}
	const topN = 10
	for _, tv := range views {
		if len(tr.Slowest) == topN {
			break
		}
		tr.Slowest = append(tr.Slowest, summarizeTrace(tv))
	}
	attr := trace.AttributeStages(spans)
	sort.Slice(attr, func(i, j int) bool { return attr[i].Count > attr[j].Count })
	if len(attr) > topN {
		attr = attr[:topN]
	}
	tr.Attribution = attr
	return tr, views
}

func summarizeTrace(tv trace.TraceView) SlowTrace {
	st := SlowTrace{
		Trace:      fmt.Sprintf("%016x", tv.Trace),
		DurationNS: int64(tv.Duration()),
		Hops:       len(tv.Spans),
		Nodes:      tv.Nodes,
		CrossNode:  tv.CrossNode(),
		Complete:   tv.Complete(),
		Coverage:   tv.Coverage(),
		Dead:       tv.Dead,
		StagesNS:   map[string]int64{},
	}
	for i, d := range tv.StageNS {
		if d > 0 {
			st.StagesNS[trace.SpanStage(i).String()] = d
		}
	}
	return st
}

// waitConverged blocks until every node sees the full membership alive.
func waitConverged(nodes []*cluster.Cluster, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		converged := true
		for _, c := range nodes {
			ms, _ := c.Members()
			alive := 0
			for _, m := range ms {
				if m.State == cluster.StateAlive {
					alive++
				}
			}
			if alive != len(nodes) {
				converged = false
				break
			}
		}
		if converged {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("harness: membership never converged")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
