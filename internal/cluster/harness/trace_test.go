package harness

import (
	"testing"
	"time"

	"repro/internal/trace"
)

// TestHarnessTracing runs a small traced harness pass (every op sampled, no
// kill — the kill path rides in CI's loadgen trace-smoke) and pins the
// acceptance contract for cross-node traces: at least one trace crosses
// nodes with every span finished, its ledger attributes mailbox, handler
// and wire time, and the stage sum telescopes to within 10% of the
// end-to-end latency.
func TestHarnessTracing(t *testing.T) {
	rep, err := Run(Config{
		Nodes: 3, Clients: 2_000, Grains: 64, Workers: 16, Shards: 32,
		TraceSample: 1, Kill: false, Seed: 1,
		HeartbeatInterval: 2 * time.Millisecond,
		HeartbeatTimeout:  20 * time.Millisecond,
		SuspectAfter:      60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil {
		t.Fatal("TraceSample=1 produced no trace report")
	}
	if rep.Trace.Spans == 0 || rep.Trace.Traces == 0 {
		t.Fatalf("no spans collected: %+v", rep.Trace)
	}
	if rep.Trace.CompleteCrossNode == 0 {
		t.Fatalf("no complete cross-node trace: %+v", rep.Trace)
	}
	// The contract is existential, not universal: a reply span overlapping
	// a preempted parent's handler tail can legitimately push one trace's
	// coverage past 1.1 under scheduler noise, but a healthy run must have
	// cross-node traces whose ledger telescopes.
	var verified int
	for _, tv := range rep.TraceViews {
		if !tv.CrossNode() || !tv.Complete() {
			continue
		}
		if c := tv.Coverage(); c < 0.9 || c > 1.1 {
			continue
		}
		full := true
		for _, stage := range []trace.SpanStage{trace.StageMailbox, trace.StageHandler, trace.StageWire} {
			if tv.StageNS[stage] <= 0 {
				full = false
			}
		}
		if full {
			verified++
		}
	}
	if verified == 0 {
		t.Fatalf("no complete cross-node trace with full stage ledger and coverage within 10%%: %+v", rep.Trace)
	}
	if len(rep.Trace.Slowest) == 0 || len(rep.Trace.Attribution) == 0 {
		t.Fatalf("report summary empty: %+v", rep.Trace)
	}
}
