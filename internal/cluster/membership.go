package cluster

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"
)

// Membership is a SWIM-flavored gossip protocol that rides the wire layer's
// existing liveness machinery instead of adding its own: failure detection
// comes from remote.Config.OnLinkState (a dial-out link's heartbeat timeout
// IS the suspicion trigger), and dissemination from remote.Config.Gossip
// (digests piggyback on heartbeat ticks as FrameGossip, negotiated as
// CodecVer 4). Each member carries an incarnation number only it may
// increment: a state claim about a member is ordered first by incarnation,
// then by direness (alive < suspect < dead < left), so a flapping node
// cannot resurrect stale ownership — its old alive@i claims lose to the
// suspect@i that grounded it, and only the node itself, by refuting with
// alive@i+1, can clear the suspicion.
//
// Lifecycle of a failure: the link to a peer times out → the peer is marked
// suspect at its current incarnation (it keeps its shards — flapping must
// not thrash the ring) → if the suspicion survives SuspectAfter it is
// promoted to dead, the ring epoch bumps, and its shards move. A suspected
// node that was merely slow sees its own suspicion in gossip and refutes;
// a dead node that restarts sees dead@i and rejoins as alive@i+1.
//
// Split-brain fencing is quorum-based: a node hosts activations only while
// it can see (links up, state alive) a strict majority of all members it has
// ever known. The minority side of a partition loses its links within one
// heartbeat timeout and stops hosting immediately, while the majority side
// waits out SuspectAfter before taking ownership — so the fencing margin
// between the old owner deactivating and the new owner activating is
// SuspectAfter minus one heartbeat timeout, and SuspectAfter must be
// comfortably larger (withDefaults enforces a floor).

// State is a member's liveness as locally believed.
type State uint8

const (
	// StateAlive: links up (or no evidence against); owns its ring shards.
	StateAlive State = iota
	// StateSuspect: link down, grace running; still owns its shards, but
	// messages to them are parked rather than forwarded into the dead link.
	StateSuspect
	// StateDead: suspicion outlived SuspectAfter; shards have moved. Only a
	// refutation at a higher incarnation readmits the member.
	StateDead
	// StateLeft: graceful departure (tombstone; never contests ownership).
	StateLeft
)

func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	case StateLeft:
		return "left"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Member is one row of the membership table.
type Member struct {
	Addr  string
	Inc   uint64 // incarnation: bumped only by the member itself, to refute
	State State
}

// memberChange describes one accepted table transition, delivered to the
// cluster after the table lock is released.
type memberChange struct {
	Member
	prev  State
	fresh bool // first time this address was heard of
}

type memberRec struct {
	Member
	since time.Time // when State was last set (drives suspect→dead)
}

type membership struct {
	suspectAfter time.Duration
	shards       int
	onChange     func([]memberChange, uint64) // fired outside mu; epoch after the batch

	mu      sync.RWMutex
	self    string // empty until start()
	inc     uint64 // own incarnation
	members map[string]*memberRec
	epoch   uint64

	// ring memoizes shard ownership for the current epoch: owners are
	// alive+suspect members (suspects keep their shards; see package doc).
	ringEpoch  uint64
	ringOwners []string // len == shards; "" where no candidate exists

	scratch []byte // digest encode buffer, guarded by mu
}

func newMembership(shards int, suspectAfter time.Duration, onChange func([]memberChange, uint64)) *membership {
	return &membership{
		suspectAfter: suspectAfter,
		shards:       shards,
		onChange:     onChange,
		members:      map[string]*memberRec{},
	}
}

// start names this node (the resolved listen address, known only after the
// remote.Node binds) and seeds the table. Gossip arriving before start is
// dropped — frames cannot flow before the node listens anyway.
func (m *membership) start(self string, seeds []string, now time.Time) {
	m.mu.Lock()
	m.self = self
	m.members[self] = &memberRec{Member: Member{Addr: self, Inc: 0, State: StateAlive}, since: now}
	for _, s := range seeds {
		if s == self || s == "" {
			continue
		}
		if _, ok := m.members[s]; !ok {
			m.members[s] = &memberRec{Member: Member{Addr: s, Inc: 0, State: StateAlive}, since: now}
		}
	}
	m.epoch++
	m.mu.Unlock()
}

// epochNow returns the current table epoch.
func (m *membership) epochNow() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.epoch
}

// snapshot returns the table rows and epoch.
func (m *membership) snapshot() ([]Member, uint64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Member, 0, len(m.members))
	for _, r := range m.members {
		out = append(out, r.Member)
	}
	return out, m.epoch
}

// counts returns (alive, suspect, dead, total-non-left) for gauges and the
// quorum rule.
func (m *membership) counts() (alive, suspect, dead, total int) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.countsLocked()
}

func (m *membership) countsLocked() (alive, suspect, dead, total int) {
	for _, r := range m.members {
		switch r.State {
		case StateAlive:
			alive++
		case StateSuspect:
			suspect++
		case StateDead:
			dead++
		default:
			continue // left members are tombstones, outside the quorum universe
		}
		total++
	}
	return
}

// quorate reports whether this node may host activations: it must believe a
// strict majority of all known (non-left) members — itself included — is
// alive. Suspects do not count toward the majority: that is what makes the
// minority side of a partition fence itself within one heartbeat timeout,
// before the majority side's SuspectAfter expires and ownership moves.
func (m *membership) quorate() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	alive, _, _, total := m.countsLocked()
	return alive*2 > total
}

// ownerOf resolves a shard to its owning member under the current view.
// Suspect owners are reported as such so the routing layer parks instead of
// forwarding into a dead link.
func (m *membership) ownerOf(shard int) (addr string, state State, ok bool) {
	m.mu.RLock()
	if m.ringEpoch == m.epoch && m.ringOwners != nil {
		addr = m.ringOwners[shard]
		if addr == "" {
			m.mu.RUnlock()
			return "", 0, false
		}
		rec := m.members[addr]
		st := rec.State
		m.mu.RUnlock()
		return addr, st, true
	}
	m.mu.RUnlock()

	m.mu.Lock()
	m.rebuildRingLocked()
	addr = m.ringOwners[shard]
	var st State
	if addr != "" {
		st = m.members[addr].State
		ok = true
	}
	m.mu.Unlock()
	return addr, st, ok
}

// rebuildRingLocked recomputes the memoized owner table for the current
// epoch. Candidates are alive and suspect members: suspicion alone must not
// move shards, or a flapping link would thrash every grain it hosts.
func (m *membership) rebuildRingLocked() {
	if m.ringEpoch == m.epoch && m.ringOwners != nil {
		return
	}
	candidates := make([]string, 0, len(m.members))
	for addr, r := range m.members {
		if r.State == StateAlive || r.State == StateSuspect {
			candidates = append(candidates, addr)
		}
	}
	if m.ringOwners == nil {
		m.ringOwners = make([]string, m.shards)
	}
	for s := 0; s < m.shards; s++ {
		m.ringOwners[s] = ownerAmong(s, candidates)
	}
	m.ringEpoch = m.epoch
}

// ownedShards returns the shards this node currently owns.
func (m *membership) ownedShards() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rebuildRingLocked()
	var out []int
	for s, o := range m.ringOwners {
		if o == m.self && o != "" {
			out = append(out, s)
		}
	}
	return out
}

// --- gossip (remote.GossipHook) ---------------------------------------------

// GossipDigest encodes the full table as the self-contained snapshot the
// wire layer piggybacks on a heartbeat: uvarint count, then per member a
// length-prefixed address, uvarint incarnation, and a state byte. Tables are
// a handful of rows, so full-state gossip converges in one round per link
// and there is no anti-entropy bookkeeping to get wrong.
func (m *membership) GossipDigest(peer string) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.self == "" {
		return nil
	}
	buf := binary.AppendUvarint(m.scratch[:0], uint64(len(m.members)))
	for _, r := range m.members {
		buf = binary.AppendUvarint(buf, uint64(len(r.Addr)))
		buf = append(buf, r.Addr...)
		buf = binary.AppendUvarint(buf, r.Inc)
		buf = append(buf, byte(r.State))
	}
	m.scratch = buf
	// The wire layer stores the digest into a frame before the next tick
	// reuses scratch, but the hook contract is a stable snapshot — copy.
	out := make([]byte, len(buf))
	copy(out, buf)
	return out
}

// OnGossip merges one received digest (remote.GossipHook).
func (m *membership) OnGossip(from string, digest []byte) {
	claims, ok := decodeDigest(digest)
	if !ok {
		return
	}
	m.merge(claims, time.Now())
}

func decodeDigest(b []byte) ([]Member, bool) {
	n, k := binary.Uvarint(b)
	if k <= 0 || n > 1<<16 {
		return nil, false
	}
	b = b[k:]
	out := make([]Member, 0, n)
	for i := uint64(0); i < n; i++ {
		l, k := binary.Uvarint(b)
		if k <= 0 || uint64(len(b[k:])) < l+2 {
			return nil, false
		}
		b = b[k:]
		addr := string(b[:l])
		b = b[l:]
		inc, k := binary.Uvarint(b)
		if k <= 0 || len(b[k:]) < 1 {
			return nil, false
		}
		b = b[k:]
		st := State(b[0])
		if st > StateLeft {
			return nil, false
		}
		b = b[1:]
		out = append(out, Member{Addr: addr, Inc: inc, State: st})
	}
	return out, true
}

// direr orders states at equal incarnation: the more dire claim wins, which
// is what lets dead override suspect override alive without a coordinator.
func direr(a, b State) bool { return a > b }

// merge applies a batch of claims under the incarnation/direness order and
// fires onChange for every accepted transition.
func (m *membership) merge(claims []Member, now time.Time) {
	var changes []memberChange
	m.mu.Lock()
	if m.self == "" {
		m.mu.Unlock()
		return
	}
	for _, c := range claims {
		if c.Addr == "" {
			continue
		}
		if c.Addr == m.self {
			// Refutation: someone believes we are suspect/dead/left. If the
			// claim's incarnation is current, only we may clear it — by
			// re-asserting alive one incarnation higher, which the next
			// gossip round disseminates.
			if c.State != StateAlive && c.Inc >= m.inc {
				m.inc = c.Inc + 1
				rec := m.members[m.self]
				prev := rec.State
				rec.Inc, rec.State, rec.since = m.inc, StateAlive, now
				m.epoch++
				changes = append(changes, memberChange{Member: rec.Member, prev: prev})
			}
			continue
		}
		rec, known := m.members[c.Addr]
		if !known {
			m.members[c.Addr] = &memberRec{Member: c, since: now}
			m.epoch++
			changes = append(changes, memberChange{Member: c, prev: StateAlive, fresh: true})
			continue
		}
		if c.Inc > rec.Inc || (c.Inc == rec.Inc && direr(c.State, rec.State)) {
			prev := rec.State
			rec.Inc, rec.State, rec.since = c.Inc, c.State, now
			if prev != c.State {
				m.epoch++
				changes = append(changes, memberChange{Member: rec.Member, prev: prev})
			}
		}
	}
	epoch := m.epoch
	m.mu.Unlock()
	if len(changes) > 0 && m.onChange != nil {
		m.onChange(changes, epoch)
	}
}

// --- direct failure detection (remote.Config.OnLinkState) -------------------

// onLinkState is the wire layer's liveness verdict for one dial-out link.
// Down is direct evidence: alive → suspect at the member's current
// incarnation. Up clears a suspicion we raised ourselves the same way; a
// dead member is NOT revived by a mere reconnect — it must refute through
// gossip at a higher incarnation, or its stale ownership could resurrect.
func (m *membership) onLinkState(peer string, up bool) {
	var changes []memberChange
	m.mu.Lock()
	rec, known := m.members[peer]
	if !known || peer == m.self {
		m.mu.Unlock()
		return
	}
	now := time.Now()
	switch {
	case !up && rec.State == StateAlive:
		prev := rec.State
		rec.State, rec.since = StateSuspect, now
		m.epoch++
		changes = append(changes, memberChange{Member: rec.Member, prev: prev})
	case up && rec.State == StateSuspect:
		prev := rec.State
		rec.State, rec.since = StateAlive, now
		m.epoch++
		changes = append(changes, memberChange{Member: rec.Member, prev: prev})
	}
	epoch := m.epoch
	m.mu.Unlock()
	if len(changes) > 0 && m.onChange != nil {
		m.onChange(changes, epoch)
	}
}

// tick promotes suspicions that outlived the grace period to dead. Called
// from the cluster janitor.
func (m *membership) tick(now time.Time) {
	var changes []memberChange
	m.mu.Lock()
	for _, rec := range m.members {
		if rec.State == StateSuspect && now.Sub(rec.since) >= m.suspectAfter {
			prev := rec.State
			rec.State, rec.since = StateDead, now
			m.epoch++
			changes = append(changes, memberChange{Member: rec.Member, prev: prev})
		}
	}
	epoch := m.epoch
	m.mu.Unlock()
	if len(changes) > 0 && m.onChange != nil {
		m.onChange(changes, epoch)
	}
}

// leave marks this node left, for a graceful Close: the tombstone rides any
// gossip still in flight, so peers reassign its shards without waiting out
// suspicion. Best-effort — a torn-down node stops gossiping immediately.
func (m *membership) leave() {
	m.mu.Lock()
	if rec, ok := m.members[m.self]; ok && m.self != "" {
		m.inc++
		rec.Inc, rec.State = m.inc, StateLeft
		m.epoch++
	}
	m.mu.Unlock()
}
