package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/actors"
	"repro/internal/detect"
	"repro/internal/faults"
	"repro/internal/trace"
)

// killRetry is tuned to ride through a handoff: timeouts short enough that
// retries land inside the suspicion window (exercising the parking buffer),
// budget generous enough that every operation eventually completes.
var killRetry = actors.RetryConfig{
	Attempts:   5000,
	Timeout:    30 * time.Millisecond,
	Backoff:    time.Millisecond,
	MaxBackoff: 10 * time.Millisecond,
	Jitter:     0.2,
	Budget:     60 * time.Second,
}

// fencingLedger is the single-writer oracle. Every grain activation gets a
// unique instance ID; every processed Inc appends that ID to the grain's
// writer history. Single-writer placement holds iff each history is a
// sequence of contiguous blocks: once instance B writes, a previously-seen
// instance A may never write again (an A,B,A interleave means a deposed
// activation acted concurrently with its successor — exactly the overlap
// incarnation fencing must prevent). Unlike sampling ActiveGrains across
// nodes, this cannot false-positive on a handoff that happens between two
// reads: it records the real order of effects.
type fencingLedger struct {
	mu      sync.Mutex
	seen    map[[2]int]int   // (client, seq) → deliveries (dedup ledger)
	last    map[string]int64 // grain → current writer instance
	retired map[string]map[int64]bool
	viol    []string
}

func newFencingLedger() *fencingLedger {
	return &fencingLedger{
		seen:    map[[2]int]int{},
		last:    map[string]int64{},
		retired: map[string]map[int64]bool{},
	}
}

func (l *fencingLedger) write(grain string, inst int64, client, seq int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seen[[2]int{client, seq}]++
	prev, ok := l.last[grain]
	if !ok {
		l.last[grain] = inst
		return
	}
	if prev == inst {
		return
	}
	if l.retired[grain][inst] {
		l.viol = append(l.viol, fmt.Sprintf(
			"grain %s: retired instance %d wrote after instance %d took over", grain, inst, prev))
		return
	}
	if l.retired[grain] == nil {
		l.retired[grain] = map[int64]bool{}
	}
	l.retired[grain][prev] = true
	l.last[grain] = inst
}

func (l *fencingLedger) distinct() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.seen)
}

func (l *fencingLedger) deliveries() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, c := range l.seen {
		n += c
	}
	return n
}

func (l *fencingLedger) violations() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.viol...)
}

// fencedCounterFactory builds counter grains wired to the fencing ledger.
// Each activation draws a fresh instance ID.
func fencedCounterFactory(led *fencingLedger, instSeq *atomic.Int64) func(addr string) GrainFactory {
	return func(addr string) GrainFactory {
		return func(name string) actors.Behavior {
			inst := instSeq.Add(1)
			return func(ctx *actors.Context, msg any) {
				switch m := msg.(type) {
				case Inc:
					led.write(name, inst, m.Client, m.Seq)
					ctx.Reply(IncAck{Seq: m.Seq})
				case WhoAmI:
					ctx.Reply(HostedAt{Grain: name, Node: addr})
				}
			}
		}
	}
}

// TestKillNodeRebalanceUnderLoad is the acceptance rebalance test: kill one
// of three nodes mid-load and assert (a) every client operation still
// completes exactly once by the dedup ledger, (b) every grain the victim
// hosted reactivates on a surviving owner, (c) the victim fences itself the
// moment it loses quorum, (d) no deposed activation ever acts concurrently
// with its successor, and (e) the attached concurrency-bug detectors report
// no orphaned protocols once the retries land.
func TestKillNodeRebalanceUnderLoad(t *testing.T) {
	rec := trace.NewRecorder()
	suite := detect.New()
	suite.Attach(rec)
	actors.SetDefaultRecorder(rec)
	t.Cleanup(func() { actors.SetDefaultRecorder(nil) })

	led := newFencingLedger()
	var instSeq atomic.Int64
	addrs := []string{"n1", "n2", "n3"}
	f := startCluster(t, addrs, fencedCounterFactory(led, &instSeq))
	part := faults.NewPartition()
	f.net.SetInjector(part)
	waitUntil(t, 5*time.Second, "membership convergence", f.converged)

	const (
		clients = 12
		opsHalf = 20
		victim  = "n3"
	)
	grainName := func(c int) string { return fmt.Sprintf("counter-%d", c) }

	// The ring must place at least one driven grain on the node we kill, or
	// the test exercises nothing.
	victimGrains := 0
	for c := 0; c < clients; c++ {
		if owner, ok := f.nodes["n1"].OwnerOf(grainName(c)); ok && owner == victim {
			victimGrains++
		}
	}
	if victimGrains == 0 {
		t.Fatal("ring placed no test grain on the victim — pick different names")
	}

	// Phase 1: all clients complete opsHalf operations against the healthy
	// cluster (activating their grains wherever the ring placed them). Then
	// the victim is isolated and phase 2 drives the same grains through the
	// handoff. Clients run from the two survivors only.
	var phase1 sync.WaitGroup
	phase1.Add(clients)
	killed := make(chan struct{})
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			drv := f.nodes[addrs[c%2]]
			ref := drv.RefFor(grainName(c))
			for seq := 0; seq < 2*opsHalf; seq++ {
				if seq == opsHalf {
					phase1.Done()
					<-killed
				}
				rep, err := actors.AskRetry(drv.System(), ref, Inc{Client: c, Seq: seq}, killRetry)
				if err != nil {
					errs <- fmt.Errorf("client %d seq %d: %w", c, seq, err)
					return
				}
				if ack, ok := rep.(IncAck); !ok || ack.Seq != seq {
					errs <- fmt.Errorf("client %d seq %d: bad ack %#v", c, seq, rep)
					return
				}
			}
			errs <- nil
		}(c)
	}
	phase1.Wait()
	part.Isolate(victim)
	close(killed)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// The ledger holds exactly: every offered operation was delivered and
	// acknowledged at least once, and the dedup count equals offers — the
	// at-most-once retries explain any surplus deliveries.
	offered := clients * 2 * opsHalf
	if got := led.distinct(); got != offered {
		t.Fatalf("distinct deliveries = %d, offered = %d", got, offered)
	}
	if dup := led.deliveries() - offered; dup > 0 {
		t.Logf("%d duplicate deliveries absorbed by idempotent grains (retry after lost ack)", dup)
	}

	// The victim fenced itself: quorum lost, every activation deposed.
	vic := f.nodes[victim]
	waitUntil(t, 5*time.Second, "victim self-fencing", func() bool {
		return !vic.Quorate() && len(vic.ActiveGrains()) == 0
	})
	if got := vic.CounterSnapshot().HandoffsOut; got < int64(victimGrains) {
		t.Fatalf("victim deposed %d grains, hosted at least %d", got, victimGrains)
	}

	// Survivors declared it dead and split the whole ring between them.
	waitUntil(t, 5*time.Second, "survivors declare victim dead", func() bool {
		for _, a := range addrs[:2] {
			ms, _ := f.nodes[a].Members()
			if stateOf(ms, victim) != StateDead {
				return false
			}
		}
		return true
	})
	if n := len(f.nodes["n1"].OwnedShards()) + len(f.nodes["n2"].OwnedShards()); n != 32 {
		t.Fatalf("survivors own %d/32 shards", n)
	}

	// Every grain reactivates on a surviving owner.
	c1 := f.nodes["n1"]
	for c := 0; c < clients; c++ {
		rep, err := actors.AskRetry(c1.System(), c1.RefFor(grainName(c)), WhoAmI{}, killRetry)
		if err != nil {
			t.Fatalf("post-kill WhoAmI %s: %v", grainName(c), err)
		}
		if at := rep.(HostedAt); at.Node == victim {
			t.Fatalf("grain %s still claims dead host %s", grainName(c), victim)
		}
	}

	// Single-writer placement held throughout: no deposed activation wrote
	// after its successor took over.
	if viol := led.violations(); len(viol) > 0 {
		t.Fatalf("fencing violations:\n%s", viol)
	}

	// The handoff machinery was actually exercised: messages parked during
	// the suspicion window and flushed to the new owners.
	var parked, flushed int64
	for _, c := range f.nodes {
		s := c.CounterSnapshot()
		parked += s.Parked
		flushed += s.ParkedFlush
	}
	if parked == 0 || flushed == 0 {
		t.Fatalf("handoff buffering never engaged: parked=%d flushed=%d", parked, flushed)
	}

	// Once the retries land, the detectors see a clean protocol: no
	// orphaned asks/acks, no stale-behavior dispatches.
	for _, fd := range suite.Findings() {
		t.Errorf("detector finding: %s", fd)
	}
}

// TestPartitionSawtoothFencing flaps one node through repeated
// isolate/heal cycles while load runs, asserting the cluster never yields
// two live activations of the same grain (the fencing oracle), that every
// operation completes exactly once, and that the flapping node's
// incarnation grew — i.e. it was declared dead, refuted the claim, and was
// readmitted under a higher incarnation rather than resurrecting stale
// state.
func TestPartitionSawtoothFencing(t *testing.T) {
	led := newFencingLedger()
	var instSeq atomic.Int64
	addrs := []string{"n1", "n2", "n3"}
	f := startCluster(t, addrs, fencedCounterFactory(led, &instSeq))
	part := faults.NewPartition()
	f.net.SetInjector(part)
	waitUntil(t, 5*time.Second, "membership convergence", f.converged)

	const (
		clients = 8
		flappy  = "n3"
		cycles  = 3
	)
	grainName := func(c int) string { return fmt.Sprintf("saw-%d", c) }

	stop := make(chan struct{})
	counts := make([]int, clients)
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			drv := f.nodes[addrs[c%2]]
			ref := drv.RefFor(grainName(c))
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					counts[c] = seq
					errs <- nil
					return
				default:
				}
				rep, err := actors.AskRetry(drv.System(), ref, Inc{Client: c, Seq: seq}, killRetry)
				if err != nil {
					counts[c] = seq
					errs <- fmt.Errorf("client %d seq %d: %w", c, seq, err)
					return
				}
				if ack, ok := rep.(IncAck); !ok || ack.Seq != seq {
					counts[c] = seq
					errs <- fmt.Errorf("client %d seq %d: bad ack %#v", c, seq, rep)
					return
				}
			}
		}(c)
	}

	// The sawtooth: each isolation outlasts SuspectAfter (60ms in this
	// fixture) so the survivors take the flappy node's shards, each heal
	// phase lets it refute its death and take them back.
	for i := 0; i < cycles; i++ {
		part.Isolate(flappy)
		time.Sleep(90 * time.Millisecond)
		part.HealNode(flappy)
		time.Sleep(90 * time.Millisecond)
	}
	part.HealAll()
	waitUntil(t, 10*time.Second, "post-sawtooth convergence", f.converged)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	offered := 0
	for _, n := range counts {
		offered += n
	}
	if offered == 0 {
		t.Fatal("no load ran through the sawtooth")
	}
	if got := led.distinct(); got != offered {
		t.Fatalf("distinct deliveries = %d, offered = %d", got, offered)
	}
	if viol := led.violations(); len(viol) > 0 {
		t.Fatalf("two live activations overlapped:\n%s", viol)
	}

	// Incarnation fencing: the flappy node was declared dead and had to
	// refute under a higher incarnation to get back in. Every survivor
	// agrees on the raised incarnation.
	for _, a := range addrs[:2] {
		ms, _ := f.nodes[a].Members()
		m := memberOf(ms, flappy)
		if m.State != StateAlive || m.Inc == 0 {
			t.Fatalf("%s sees flappy node as %s inc=%d, want alive at raised incarnation", a, m.State, m.Inc)
		}
	}
}
