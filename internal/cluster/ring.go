package cluster

import "hash/fnv"

// The shard ring partitions the grain name space. Names hash onto a fixed
// number of shards (Config.Shards, default 128), and each shard is owned by
// exactly one live member chosen by rendezvous (highest-random-weight)
// hashing: the owner of shard s is the member m maximizing h(m, s). Every
// node computes ownership locally from its own membership view — there is no
// placement coordinator — so agreement is exactly as good as membership
// agreement, which is why activation is additionally fenced by quorum and
// the suspect grace period (see membership.go).
//
// Rendezvous hashing was chosen over a hashed token ring because its
// redistribution is minimal and exact: when a member dies, only the shards
// it owned move, each independently to the surviving member that ranks next,
// and when it returns, exactly those shards move back. No virtual-node
// tuning, no token metadata to gossip.

// shardOf maps a grain name to its shard.
func shardOf(name string, shards int) int {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return int(h.Sum64() % uint64(shards))
}

// rendezvous scores one (member, shard) pair; the highest score owns.
func rendezvous(member string, shard int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(member))
	_, _ = h.Write([]byte{'#', byte(shard), byte(shard >> 8), byte(shard >> 16), byte(shard >> 24)})
	return h.Sum64()
}

// ownerAmong picks the rendezvous winner for shard from candidates; empty
// string when there are none. Ties (astronomically unlikely with fnv64a over
// distinct addresses) break toward the lexically smaller address so every
// node picks the same winner.
func ownerAmong(shard int, candidates []string) string {
	var owner string
	var best uint64
	for _, m := range candidates {
		s := rendezvous(m, shard)
		if owner == "" || s > best || (s == best && m < owner) {
			owner, best = m, s
		}
	}
	return owner
}
