package cluster

import (
	"testing"
	"time"
)

func collectChanges(dst *[]memberChange) func([]memberChange, uint64) {
	return func(ch []memberChange, _ uint64) { *dst = append(*dst, ch...) }
}

func TestDigestRoundTrip(t *testing.T) {
	m := newMembership(16, time.Second, nil)
	now := time.Now()
	m.start("A", []string{"B", "C"}, now)
	m.merge([]Member{{Addr: "D", Inc: 7, State: StateSuspect}}, now)

	claims, ok := decodeDigest(m.GossipDigest("B"))
	if !ok {
		t.Fatal("digest failed to decode")
	}
	got := map[string]Member{}
	for _, c := range claims {
		got[c.Addr] = c
	}
	if len(got) != 4 {
		t.Fatalf("digest carried %d members, want 4: %v", len(got), got)
	}
	if d := got["D"]; d.Inc != 7 || d.State != StateSuspect {
		t.Fatalf("D round-tripped as %+v", d)
	}
	if a := got["A"]; a.State != StateAlive {
		t.Fatalf("self round-tripped as %+v", a)
	}
}

func TestDigestRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {0xff}, {2, 1, 'x'}, {1, 3, 'a', 'b', 'c', 0, 9}} {
		if claims, ok := decodeDigest(b); ok && len(claims) > 0 {
			t.Fatalf("garbage %v decoded to %v", b, claims)
		}
	}
	// A valid single-member digest decodes.
	m := newMembership(4, time.Second, nil)
	m.start("solo", nil, time.Now())
	if _, ok := decodeDigest(m.GossipDigest("x")); !ok {
		t.Fatal("valid digest rejected")
	}
}

func TestMergeIncarnationAndDirenessOrder(t *testing.T) {
	m := newMembership(16, time.Second, nil)
	now := time.Now()
	m.start("A", []string{"B"}, now)

	// Same incarnation: the more dire claim wins…
	m.merge([]Member{{Addr: "B", Inc: 0, State: StateSuspect}}, now)
	if ms, _ := m.snapshot(); stateOf(ms, "B") != StateSuspect {
		t.Fatal("suspect@0 did not override alive@0")
	}
	// …and the less dire one cannot claw back.
	m.merge([]Member{{Addr: "B", Inc: 0, State: StateAlive}}, now)
	if ms, _ := m.snapshot(); stateOf(ms, "B") != StateSuspect {
		t.Fatal("alive@0 overrode suspect@0 — flapping can resurrect stale state")
	}
	// A higher incarnation clears it regardless of direness.
	m.merge([]Member{{Addr: "B", Inc: 1, State: StateAlive}}, now)
	if ms, _ := m.snapshot(); stateOf(ms, "B") != StateAlive {
		t.Fatal("alive@1 did not override suspect@0")
	}
	// Dead at the same incarnation beats suspect and alive.
	m.merge([]Member{{Addr: "B", Inc: 1, State: StateDead}}, now)
	if ms, _ := m.snapshot(); stateOf(ms, "B") != StateDead {
		t.Fatal("dead@1 did not override alive@1")
	}
}

func TestSelfRefutationBumpsIncarnation(t *testing.T) {
	var changes []memberChange
	m := newMembership(16, time.Second, collectChanges(&changes))
	now := time.Now()
	m.start("A", []string{"B"}, now)

	// Someone declares us dead at our current incarnation: we must refute
	// one incarnation higher, never accept it.
	m.merge([]Member{{Addr: "A", Inc: 0, State: StateDead}}, now)
	ms, _ := m.snapshot()
	self := memberOf(ms, "A")
	if self.State != StateAlive || self.Inc != 1 {
		t.Fatalf("after dead@0 claim, self = %+v, want alive@1", self)
	}
	// A stale claim below our incarnation is ignored outright.
	m.merge([]Member{{Addr: "A", Inc: 0, State: StateSuspect}}, now)
	ms, _ = m.snapshot()
	if self := memberOf(ms, "A"); self.State != StateAlive || self.Inc != 1 {
		t.Fatalf("stale suspect@0 disturbed self: %+v", self)
	}
}

func TestSuspectPromotionAndQuorum(t *testing.T) {
	m := newMembership(16, 50*time.Millisecond, nil)
	now := time.Now()
	m.start("A", []string{"B", "C"}, now)
	if !m.quorate() {
		t.Fatal("3/3 alive should be quorate")
	}

	m.onLinkState("B", false)
	m.onLinkState("C", false)
	if m.quorate() {
		t.Fatal("1 alive of 3 should not be quorate")
	}
	// Before the grace expires the suspects are still ring candidates.
	if _, _, ok := m.ownerOf(3); !ok {
		t.Fatal("suspects should still anchor the ring")
	}
	m.tick(now.Add(20 * time.Millisecond)) // grace not yet expired
	if ms, _ := m.snapshot(); stateOf(ms, "B") != StateSuspect {
		t.Fatal("promoted before SuspectAfter")
	}
	m.tick(now.Add(100 * time.Millisecond))
	ms, _ := m.snapshot()
	if stateOf(ms, "B") != StateDead || stateOf(ms, "C") != StateDead {
		t.Fatalf("suspects not promoted: %v", ms)
	}
	// With B and C dead the survivor owns everything — but still lacks
	// quorum (1 alive of 3 known), so it may not host.
	for s := 0; s < 16; s++ {
		if owner, _, ok := m.ownerOf(s); !ok || owner != "A" {
			t.Fatalf("shard %d owner = %q after deaths", s, owner)
		}
	}
	if m.quorate() {
		t.Fatal("sole survivor of 3 must stay fenced")
	}

	// Link recovery while merely suspect restores alive directly.
	m2 := newMembership(16, time.Hour, nil)
	m2.start("A", []string{"B", "C"}, now)
	m2.onLinkState("B", false)
	m2.onLinkState("B", true)
	if ms, _ := m2.snapshot(); stateOf(ms, "B") != StateAlive {
		t.Fatal("link recovery did not clear local suspicion")
	}
	// But a dead member reconnecting is NOT revived by the link alone.
	m2.merge([]Member{{Addr: "C", Inc: 0, State: StateDead}}, now)
	m2.onLinkState("C", true)
	if ms, _ := m2.snapshot(); stateOf(ms, "C") != StateDead {
		t.Fatal("link up revived a dead member without refutation")
	}
}

func TestRingMinimalMovement(t *testing.T) {
	const shards = 128
	all := []string{"n1", "n2", "n3"}
	before := make([]string, shards)
	for s := range before {
		before[s] = ownerAmong(s, all)
	}
	// Removing one member must move exactly its shards, nothing else.
	survivors := []string{"n1", "n3"}
	moved, stayed := 0, 0
	for s := range before {
		after := ownerAmong(s, survivors)
		if before[s] == "n2" {
			if after == "n2" || after == "" {
				t.Fatalf("shard %d stranded on dead member", s)
			}
			moved++
		} else if after != before[s] {
			t.Fatalf("shard %d moved %s→%s though its owner survived", s, before[s], after)
		} else {
			stayed++
		}
	}
	if moved == 0 {
		t.Fatal("dead member owned nothing — ring is degenerate")
	}
	if moved+stayed != shards {
		t.Fatalf("moved %d + stayed %d != %d", moved, stayed, shards)
	}
	// Each node must own a nontrivial share (rendezvous balance).
	counts := map[string]int{}
	for s := range before {
		counts[before[s]]++
	}
	for _, n := range all {
		if counts[n] < shards/8 {
			t.Fatalf("member %s owns only %d/%d shards: %v", n, counts[n], shards, counts)
		}
	}
}

func stateOf(ms []Member, addr string) State { return memberOf(ms, addr).State }

func memberOf(ms []Member, addr string) Member {
	for _, m := range ms {
		if m.Addr == addr {
			return m
		}
	}
	return Member{State: StateLeft}
}
