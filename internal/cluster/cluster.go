// Package cluster shards a named virtual-actor ("grain") space across a set
// of remote.Nodes. Every node runs the same three layers:
//
//   - membership (membership.go): seed-list join, gossip dissemination over
//     the wire layer's heartbeat frames, link-timeout failure detection,
//     incarnation-numbered states, quorum fencing.
//   - ring (ring.go): rendezvous-hashed assignment of a fixed shard count to
//     the live members, recomputed locally per membership epoch.
//   - grains (this file): RefFor("user-12345") returns a proxy whose sends
//     resolve the owning node per delivery. On the owner, the grain is
//     activated on first message via the configured factory and passivated
//     when idle; elsewhere the message is forwarded to the owner's router.
//
// Delivery is at-most-once end to end, exactly like the wire layer under it:
// a rebalance can shed in-flight messages (as retryable ErrShardMoving
// deadletters) or deliver parked ones late, so grain protocols must be
// idempotent and callers needing an answer must use AskRetry — the same
// contract remote asks already carry. What the cluster adds is single-writer
// placement: at any moment at most one live activation of a grain exists
// (quorum + suspect-grace fencing, asserted by the rebalance tests), so a
// grain serializes its own state like any actor while the system survives
// node death by reactivating elsewhere.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/actors"
	"repro/internal/metrics"
	"repro/internal/remote"
	"repro/internal/trace"
)

// RouterName is the well-known remote.Node registration every cluster node
// exports: forwarded grain messages address it as "cluster!router@<owner>".
const RouterName = "cluster!router"

// maxHops bounds re-forwarding while membership views disagree: a message
// bouncing between nodes that each believe the other owns the shard is
// dropped (a retryable loss) instead of looping.
const maxHops = 4

// GrainEnvelope is the routed form of one grain message. The origin actor's
// identity travels inside it so the final host can materialize a reply proxy
// pointing straight back at the origin node, however many forwarding hops
// the request took.
type GrainEnvelope struct {
	Grain    string
	Hops     uint8
	FromAddr string
	FromID   uint64
	FromName string
	Msg      any
}

func init() { remote.RegisterType(GrainEnvelope{}) }

// GrainFactory builds the behavior for a named grain on first message. A nil
// return refuses the name (sends fail as unreachable).
type GrainFactory func(name string) actors.Behavior

// Config shapes one cluster node.
type Config struct {
	// ListenAddr / Transport / System / HeartbeatInterval / HeartbeatTimeout /
	// CreditWindow / Seed pass through to the underlying remote.Node.
	// HeartbeatTimeout matters under sustained load: the wire default (4
	// heartbeat intervals) is tuned for idle links, and a saturated machine
	// that starves a link goroutine past it produces false suspicions — and
	// with them, shard thrash. Size it to the longest scheduling stall the
	// deployment tolerates; SuspectAfter then stacks on top before anyone is
	// declared dead.
	ListenAddr        string
	Transport         remote.Transport
	System            *actors.System
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	CreditWindow      int
	Seed              int64
	// Seeds are peer listen addresses to join through. The full membership
	// arrives by gossip; seeds are only the first introduction.
	Seeds []string
	// Shards is the ring size (default 128). Every node MUST use the same
	// value — it is placement arithmetic, not a tunable per node.
	Shards int
	// Grain activates named grains on this node (required).
	Grain GrainFactory
	// SuspectAfter is the grace between link-down suspicion and declaring a
	// member dead (default 20 heartbeat intervals, floor 4 heartbeat
	// timeouts — the fencing margin; see membership.go).
	SuspectAfter time.Duration
	// PassivateAfter stops grains idle this long (0 disables).
	PassivateAfter time.Duration
	// HandoffBuffer bounds the per-shard parking buffer that holds messages
	// whose shard is mid-handoff (owner suspect or unknown, or quorum lost).
	// Overflow sheds as ProxyMoving → DLMoving → ErrShardMoving (default 256).
	HandoffBuffer int
	// ActivationGrace delays first activation on a shard this node just
	// gained (default 4 × HeartbeatInterval — one wire heartbeat timeout).
	// It is the second half of the fencing handshake: the losing side
	// deposes its instances the moment its view moves a shard away, and the
	// gaining side parks messages for the grace before activating, so a
	// scheduling stall on the loser cannot overlap two live activations.
	ActivationGrace time.Duration
	// Recorder, when set, receives membership-change flight-recorder events.
	Recorder *trace.Recorder
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 128
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 250 * time.Millisecond
	}
	hbTimeout := c.HeartbeatTimeout
	if hbTimeout <= 0 {
		hbTimeout = 4 * c.HeartbeatInterval // the wire layer's default
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 20 * c.HeartbeatInterval
	}
	// The fencing margin: a partitioned minority notices within one
	// heartbeat timeout and stops hosting; the majority must wait
	// comfortably longer before activating replacements.
	if floor := 2 * hbTimeout; c.SuspectAfter < floor {
		c.SuspectAfter = floor
	}
	if c.HandoffBuffer <= 0 {
		c.HandoffBuffer = 256
	}
	if c.ActivationGrace <= 0 {
		c.ActivationGrace = hbTimeout
	}
	return c
}

// grain is one live activation.
type grain struct {
	ref   *actors.Ref
	shard int
	epoch uint64 // membership epoch at activation (the fencing token)
	// deposed fences a deactivated instance: its behavior wrapper drops any
	// message still in the mailbox, so a stopped-but-draining grain can never
	// act concurrently with its successor on another node.
	deposed atomic.Bool
	last    atomic.Int64 // unix nanos of last delivery (passivation clock)
}

// parked is one message waiting out a shard handoff. A span parked with its
// message keeps measuring: the flush marks the park time into StagePark.
type parked struct {
	ge     GrainEnvelope
	sender *actors.Ref
	sp     *trace.Span
}

// Cluster is one node's view of the sharded grain space.
type Cluster struct {
	cfg  Config
	node *remote.Node
	sys  *actors.System
	addr string
	mem  *membership

	router *actors.Ref

	gmu         sync.RWMutex
	grains      map[string]*grain
	refs        map[string]*actors.Ref
	pending     map[int][]parked
	movingSince map[int]time.Time
	// shardSince records when the sweep first saw this node own each shard
	// while quorate; activation waits out ActivationGrace from that instant.
	// Cleared wholesale on quorum loss, so a rejoining node restarts its
	// grace even for shards it owned before the partition.
	shardSince map[int]time.Time
	closed     bool

	activations  atomic.Int64
	passivations atomic.Int64
	handoffsOut  atomic.Int64
	fencedDrops  atomic.Int64
	forwards     atomic.Int64
	forwardDrops atomic.Int64
	parkedTotal  atomic.Int64
	parkedFlush  atomic.Int64
	parkedShed   atomic.Int64
	handoffHist  atomic.Pointer[metrics.LatencyHistogram]

	done chan struct{}
	wg   sync.WaitGroup
}

// New starts a cluster node: binds the wire listener, joins via the seed
// list, and begins serving its share of the ring.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Grain == nil {
		return nil, errors.New("cluster: Config.Grain factory is required")
	}
	c := &Cluster{
		cfg:         cfg,
		grains:      map[string]*grain{},
		refs:        map[string]*actors.Ref{},
		pending:     map[int][]parked{},
		movingSince: map[int]time.Time{},
		shardSince:  map[int]time.Time{},
		done:        make(chan struct{}),
	}
	c.mem = newMembership(cfg.Shards, cfg.SuspectAfter, c.onMembershipChange)
	node, err := remote.NewNode(remote.Config{
		ListenAddr:        cfg.ListenAddr,
		Transport:         cfg.Transport,
		System:            cfg.System,
		HeartbeatInterval: cfg.HeartbeatInterval,
		HeartbeatTimeout:  cfg.HeartbeatTimeout,
		CreditWindow:      cfg.CreditWindow,
		Seed:              cfg.Seed,
		Gossip:            c.mem,
		OnLinkState:       c.mem.onLinkState,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	c.node = node
	c.sys = node.System()
	c.addr = node.Addr()
	c.mem.start(c.addr, cfg.Seeds, time.Now())

	c.router = c.sys.MustSpawn(RouterName, c.routeInbound)
	node.Register(RouterName, c.router)

	// Dial every seed now: the links carry the join gossip, and their
	// OnLinkState transitions are the failure detector.
	for _, s := range cfg.Seeds {
		if s != c.addr && s != "" {
			_, _ = node.RefFor(RouterName + "@" + s)
		}
	}

	c.wg.Add(1)
	go c.janitor()
	return c, nil
}

// Node exposes the underlying wire node (stats, metrics, clock).
func (c *Cluster) Node() *remote.Node { return c.node }

// System returns the actor system grains run in.
func (c *Cluster) System() *actors.System { return c.sys }

// Addr is this node's wire identity.
func (c *Cluster) Addr() string { return c.addr }

// Members snapshots the membership table and its epoch.
func (c *Cluster) Members() ([]Member, uint64) { return c.mem.snapshot() }

// Quorate reports whether this node may currently host activations.
func (c *Cluster) Quorate() bool { return c.mem.quorate() }

// OwnedShards lists the shards this node's view assigns to it.
func (c *Cluster) OwnedShards() []int { return c.mem.ownedShards() }

// OwnerOf resolves a grain name to the owning node under this node's view.
func (c *Cluster) OwnerOf(name string) (addr string, ok bool) {
	addr, _, ok = c.mem.ownerOf(shardOf(name, c.cfg.Shards))
	return
}

// ActiveGrains lists the grains currently activated on this node. The
// rebalance tests sample this across nodes to assert single-writer
// placement: no grain may appear on two nodes at once.
func (c *Cluster) ActiveGrains() []string {
	c.gmu.RLock()
	defer c.gmu.RUnlock()
	out := make([]string, 0, len(c.grains))
	for name, g := range c.grains {
		if !g.deposed.Load() {
			out = append(out, name)
		}
	}
	return out
}

// RefFor returns the location-transparent Ref for a named grain. Tells and
// Asks on it resolve the owning node per delivery — activation, forwarding,
// parking during handoff, and post-handoff re-resolution are all behind the
// proxy. Refs are cached per name.
func (c *Cluster) RefFor(name string) *actors.Ref {
	c.gmu.RLock()
	if r, ok := c.refs[name]; ok {
		c.gmu.RUnlock()
		return r
	}
	c.gmu.RUnlock()
	ref := c.sys.NewProxyRefStatus("grain:"+name, func(e actors.Envelope) actors.ProxyStatus {
		ge := GrainEnvelope{Grain: name, Msg: e.Msg}
		if e.Sender != nil {
			ge.FromAddr, ge.FromID, ge.FromName = c.addr, e.Sender.ID(), e.Sender.Name()
		}
		// Span ownership only transfers on ProxyDelivered (delivered, parked,
		// or forwarded); on a refusal it stays with e and the caller's
		// deadletter path seals it with the refusal kind.
		return c.route(ge, e.Sender, e.Span)
	})
	c.gmu.Lock()
	defer c.gmu.Unlock()
	if r, ok := c.refs[name]; ok {
		return r
	}
	c.refs[name] = ref
	return ref
}

// route is the one resolution path: local activation on the owner, a
// forward to a live remote owner, or the parking buffer while the shard is
// in motion. Used by the local proxy (hops 0), the inbound router, and the
// janitor's flush. sp, when non-nil, is the message's migrating trace span:
// it travels with the message (into the grain's mailbox, the parking buffer,
// or the next wire hop); route never seals it — refusals return to a caller
// whose deadletter path does.
func (c *Cluster) route(ge GrainEnvelope, sender *actors.Ref, sp *trace.Span) actors.ProxyStatus {
	if c.isClosed() {
		return actors.ProxyUnreachable
	}
	shard := shardOf(ge.Grain, c.cfg.Shards)
	owner, state, ok := c.mem.ownerOf(shard)
	switch {
	case !ok:
		// No live candidate at all — park until membership recovers.
		return c.park(shard, ge, sender, sp)
	case owner == c.addr:
		if !c.mem.quorate() {
			// Fenced: we may own this shard on paper, but without a quorum
			// of live peers we might be the minority side of a partition
			// whose majority is already re-homing it.
			return c.park(shard, ge, sender, sp)
		}
		g, status := c.activate(ge.Grain, shard)
		if g == nil {
			if status == actors.ProxyMoving {
				return c.park(shard, ge, sender, sp)
			}
			return status
		}
		g.last.Store(time.Now().UnixNano())
		g.ref.TellSpan(sender, ge.Msg, sp)
		return actors.ProxyDelivered
	case state == StateSuspect:
		// The owner is wobbling: its link died but the grace period still
		// runs. Forwarding would feed a dead link; park instead, and the
		// janitor redelivers when the owner revives or its shards move.
		return c.park(shard, ge, sender, sp)
	default:
		// The other half of the fencing handshake: before this node hands a
		// message to the new owner, any activation it still hosts for the
		// grain is deposed on this very code path — the new owner's
		// ActivationGrace only has to outlast the gap between our view
		// moving the shard and the sweep noticing, and this makes the common
		// case (traffic keeps flowing) synchronous with the first forward.
		c.deposeIfActive(ge.Grain)
		if ge.Hops >= maxHops {
			c.forwardDrops.Add(1)
			return actors.ProxyMoving
		}
		ge.Hops++
		st := c.node.Forward(owner, RouterName, actors.Envelope{Msg: ge, Span: sp})
		if st == actors.ProxyDelivered {
			c.forwards.Add(1)
		}
		return st
	}
}

// routeInbound is the router actor's behavior: it re-resolves every
// forwarded GrainEnvelope under this node's own view, reconstructing the
// origin sender so grain replies cross the wire directly back. A message the
// view re-routes elsewhere is forwarded again (bounded by maxHops); one that
// cannot be placed right now parks like a local send would. Refusals here
// have no caller to return a status to — the origin already got
// ProxyDelivered from its own node — so they are counted sheds, surfaced to
// the caller as an Ask timeout and retried into a fresh resolution.
func (c *Cluster) routeInbound(ctx *actors.Context, msg any) {
	ge, ok := msg.(GrainEnvelope)
	if !ok {
		return
	}
	var sender *actors.Ref
	if ge.FromID != 0 && ge.FromAddr != "" {
		display := fmt.Sprintf("%s@%s", ge.FromName, ge.FromAddr)
		sender = c.node.RefByID(ge.FromAddr, ge.FromID, display)
	}
	// Take ownership of the span so processOne does not seal it when this
	// handler returns: routing is a relay, and the span belongs to the
	// message's next hop. The handler stage absorbs the router's own work.
	sp := ctx.TakeSpan()
	if sp != nil {
		sp.Mark(trace.StageHandler, trace.SpanNow())
	}
	if c.route(ge, sender, sp) != actors.ProxyDelivered {
		c.parkedShed.Add(1)
		sp.FinishDead(actors.DLMoving.String(), trace.SpanNow())
	}
}

// activate returns the live local activation of name, creating it if
// needed. Ownership is re-checked under the grain lock so activation
// serializes against the janitor's deactivation sweep: between the caller's
// resolve and this lock the shard may have moved, in which case the message
// must park (ProxyMoving), not spawn a zombie. A factory refusal is
// permanent (ProxyUnreachable).
func (c *Cluster) activate(name string, shard int) (*grain, actors.ProxyStatus) {
	c.gmu.Lock()
	defer c.gmu.Unlock()
	if c.closed {
		return nil, actors.ProxyUnreachable
	}
	if g, ok := c.grains[name]; ok && !g.deposed.Load() {
		return g, actors.ProxyDelivered
	}
	owner, _, ok := c.mem.ownerOf(shard)
	if !ok || owner != c.addr || !c.mem.quorate() {
		return nil, actors.ProxyMoving
	}
	// Fencing grace: a shard this node only just gained (per the sweep's
	// shardSince ledger) may still have a live activation draining on the
	// previous owner. Park until the grace passes.
	if since, ok := c.shardSince[shard]; !ok || time.Since(since) < c.cfg.ActivationGrace {
		return nil, actors.ProxyMoving
	}
	beh := c.cfg.Grain(name)
	if beh == nil {
		return nil, actors.ProxyUnreachable
	}
	g := &grain{shard: shard, epoch: c.mem.epochNow()}
	g.last.Store(time.Now().UnixNano())
	wrapped := func(ctx *actors.Context, msg any) {
		if g.deposed.Load() {
			// Fencing: this instance lost its shard; whatever is still in
			// its mailbox must not execute concurrently with the successor.
			c.fencedDrops.Add(1)
			return
		}
		beh(ctx, msg)
	}
	ref, err := c.sys.Spawn("grain:"+name, wrapped)
	if err != nil {
		return nil, actors.ProxyUnreachable
	}
	g.ref = ref
	c.grains[name] = g
	c.activations.Add(1)
	return g, actors.ProxyDelivered
}

// deposeIfActive fences a local activation the ring has moved elsewhere.
// Cheap when there is nothing to do (shared-lock map probe), which is every
// forward on a pure relay node.
func (c *Cluster) deposeIfActive(name string) {
	c.gmu.RLock()
	_, ok := c.grains[name]
	c.gmu.RUnlock()
	if !ok {
		return
	}
	c.gmu.Lock()
	if g, ok := c.grains[name]; ok {
		g.deposed.Store(true)
		c.sys.Stop(g.ref)
		delete(c.grains, name)
		c.handoffsOut.Add(1)
	}
	c.gmu.Unlock()
}

// park buffers one message whose shard is mid-handoff. Bounded per shard;
// overflow is the retryable shed (ProxyMoving → DLMoving → ErrShardMoving).
func (c *Cluster) park(shard int, ge GrainEnvelope, sender *actors.Ref, sp *trace.Span) actors.ProxyStatus {
	c.gmu.Lock()
	defer c.gmu.Unlock()
	if c.closed {
		return actors.ProxyUnreachable
	}
	q := c.pending[shard]
	if len(q) >= c.cfg.HandoffBuffer {
		return actors.ProxyMoving
	}
	if len(q) == 0 {
		if _, ok := c.movingSince[shard]; !ok {
			c.movingSince[shard] = time.Now()
		}
	}
	c.pending[shard] = append(q, parked{ge: ge, sender: sender, sp: sp})
	c.parkedTotal.Add(1)
	return actors.ProxyDelivered
}

// onMembershipChange receives every accepted membership transition: it
// feeds the flight recorder and triggers an immediate sweep so handoff
// latency is bounded by detection, not by the janitor cadence.
func (c *Cluster) onMembershipChange(changes []memberChange, epoch uint64) {
	for _, ch := range changes {
		// A member we first heard of through gossip (not the seed list) gets
		// its dial-out link now: the link is both the forwarding path and the
		// failure detector, and a member nobody dials is a member nobody can
		// declare dead.
		if ch.fresh && ch.Addr != c.addr && !c.isClosed() {
			_, _ = c.node.RefFor(RouterName + "@" + ch.Addr)
		}
	}
	if rec := c.cfg.Recorder; rec != nil {
		for _, ch := range changes {
			detail := fmt.Sprintf("%s→%s inc=%d epoch=%d", ch.prev, ch.State, ch.Inc, epoch)
			if ch.fresh {
				detail = fmt.Sprintf("joined as %s inc=%d epoch=%d", ch.State, ch.Inc, epoch)
			}
			rec.Record("cluster@"+c.addr, trace.KindLocal, "member:"+ch.Addr, detail)
		}
	}
	c.sweep(time.Now())
}

// janitor drives the cluster's clocks: suspicion promotion, handoff
// completion, parked-message redelivery, and idle passivation.
func (c *Cluster) janitor() {
	defer c.wg.Done()
	interval := c.cfg.SuspectAfter / 8
	if c.cfg.PassivateAfter > 0 && c.cfg.PassivateAfter/4 < interval {
		interval = c.cfg.PassivateAfter / 4
	}
	// At least two sweeps per ActivationGrace, so a shard that bounces away
	// and back between sweeps cannot carry a stale grace timestamp while the
	// interim owner's own grace is still running.
	if g := c.cfg.ActivationGrace / 2; g < interval {
		interval = g
	}
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	if interval > 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-c.done:
			return
		case now := <-tick.C:
			c.mem.tick(now) // suspect → dead promotions (fire sweep via onChange)
			c.sweep(now)
		}
	}
}

// sweep reconciles local state with the current membership view: grains on
// shards this node no longer owns (or may no longer host, quorum-wise) are
// deposed and stopped; parked messages whose shard has a live owner again
// are redelivered; idle grains passivate.
func (c *Cluster) sweep(now time.Time) {
	type flush struct {
		shard   int
		batch   []parked
		started time.Time
	}
	var flushes []flush

	c.gmu.Lock()
	if c.closed {
		c.gmu.Unlock()
		return
	}
	hosting := c.mem.quorate()
	// Maintain the activation-grace ledger. Losing quorum wipes it: a node
	// readmitted after a partition must re-earn the grace even for shards it
	// held before, because the majority may have hosted them meanwhile.
	if hosting {
		owned := map[int]bool{}
		for _, s := range c.mem.ownedShards() {
			owned[s] = true
			if _, ok := c.shardSince[s]; !ok {
				c.shardSince[s] = now
			}
		}
		for s := range c.shardSince {
			if !owned[s] {
				delete(c.shardSince, s)
			}
		}
	} else if len(c.shardSince) > 0 {
		c.shardSince = map[int]time.Time{}
	}
	for name, g := range c.grains {
		owner, _, ok := c.mem.ownerOf(g.shard)
		lost := !ok || owner != c.addr || !hosting
		idle := c.cfg.PassivateAfter > 0 &&
			now.Sub(time.Unix(0, g.last.Load())) >= c.cfg.PassivateAfter &&
			c.sys.MailboxSize(g.ref) == 0
		if !lost && !idle {
			continue
		}
		g.deposed.Store(true)
		c.sys.Stop(g.ref)
		delete(c.grains, name)
		if lost {
			c.handoffsOut.Add(1)
		} else {
			c.passivations.Add(1)
		}
	}
	for shard, q := range c.pending {
		if len(q) == 0 {
			delete(c.pending, shard)
			continue
		}
		owner, state, ok := c.mem.ownerOf(shard)
		ready := ok && state == StateAlive && owner != c.addr
		if ok && owner == c.addr && hosting {
			// Self-owned: hold the flush until the activation grace has
			// passed, or the redelivery would just bounce back into the
			// parking buffer.
			since, have := c.shardSince[shard]
			ready = have && now.Sub(since) >= c.cfg.ActivationGrace
		}
		if !ready {
			continue
		}
		started := c.movingSince[shard]
		delete(c.movingSince, shard)
		delete(c.pending, shard)
		flushes = append(flushes, flush{shard: shard, batch: q, started: started})
	}
	c.gmu.Unlock()

	for _, f := range flushes {
		for _, p := range f.batch {
			// The time spent in the buffer is the handoff-park stage of the
			// message's span; a re-park just opens another park interval.
			p.sp.Mark(trace.StagePark, trace.SpanNow())
			// Redelivery re-enters route, which may re-park under a view
			// that shifted again — bounded by the same buffer.
			if st := c.route(p.ge, p.sender, p.sp); st == actors.ProxyDelivered {
				c.parkedFlush.Add(1)
			} else {
				c.parkedShed.Add(1)
				p.sp.FinishDead(actors.DLMoving.String(), trace.SpanNow())
			}
		}
		if h := c.handoffHist.Load(); h != nil && !f.started.IsZero() {
			h.Observe(now.Sub(f.started))
		}
	}
}

func (c *Cluster) isClosed() bool {
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// Close gossips a best-effort leave, stops the janitor and every local
// grain, and tears down the wire node. Idempotent.
func (c *Cluster) Close() error {
	c.gmu.Lock()
	if c.closed {
		c.gmu.Unlock()
		c.wg.Wait()
		return nil
	}
	c.closed = true
	grains := c.grains
	pending := c.pending
	c.grains = map[string]*grain{}
	c.pending = map[int][]parked{}
	c.gmu.Unlock()
	for _, q := range pending {
		for _, p := range q {
			// Parked messages die with the node; seal their spans so the
			// measurements drain to the ring instead of leaking.
			if p.sp != nil {
				p.sp.Mark(trace.StagePark, trace.SpanNow())
				p.sp.FinishDead(actors.DLMoving.String(), trace.SpanNow())
			}
		}
	}
	c.mem.leave()
	close(c.done)
	c.wg.Wait()
	for _, g := range grains {
		g.deposed.Store(true)
		c.sys.Stop(g.ref)
	}
	return c.node.Close()
}
