package cluster

import (
	"fmt"

	"repro/internal/metrics"
)

// RegisterMetrics exposes the cluster layer's state as gauges named
// prefix.cluster.<metric>, alongside the wire node's own gauges (call
// Node().RegisterMetrics separately, or with the same registry/prefix).
// It also arms the handoff latency histogram at
// prefix.cluster.handoff_ns: one observation per shard handoff, measured
// from the first message parked against the moving shard to the flush that
// redelivered the backlog under the new owner.
func (c *Cluster) RegisterMetrics(reg *metrics.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.Gauge(prefix+".cluster.members_alive", func() int64 {
		alive, _, _, _ := c.mem.counts()
		return int64(alive)
	})
	reg.Gauge(prefix+".cluster.members_suspect", func() int64 {
		_, suspect, _, _ := c.mem.counts()
		return int64(suspect)
	})
	reg.Gauge(prefix+".cluster.members_dead", func() int64 {
		_, _, dead, _ := c.mem.counts()
		return int64(dead)
	})
	reg.Gauge(prefix+".cluster.members_known", func() int64 {
		_, _, _, total := c.mem.counts()
		return int64(total)
	})
	reg.Gauge(prefix+".cluster.epoch", func() int64 { return int64(c.mem.epochNow()) })
	reg.Gauge(prefix+".cluster.quorate", func() int64 {
		if c.mem.quorate() {
			return 1
		}
		return 0
	})
	reg.Gauge(prefix+".cluster.shards_owned", func() int64 {
		return int64(len(c.mem.ownedShards()))
	})
	reg.Gauge(prefix+".cluster.grains_active", func() int64 {
		c.gmu.Lock()
		defer c.gmu.Unlock()
		return int64(len(c.grains))
	})
	reg.Gauge(prefix+".cluster.parked_now", func() int64 {
		c.gmu.Lock()
		defer c.gmu.Unlock()
		var n int64
		for _, q := range c.pending {
			n += int64(len(q))
		}
		return n
	})
	reg.Gauge(prefix+".cluster.activations", c.activations.Load)
	reg.Gauge(prefix+".cluster.passivations", c.passivations.Load)
	reg.Gauge(prefix+".cluster.handoffs_out", c.handoffsOut.Load)
	reg.Gauge(prefix+".cluster.fenced_drops", c.fencedDrops.Load)
	reg.Gauge(prefix+".cluster.forwards", c.forwards.Load)
	reg.Gauge(prefix+".cluster.forward_drops", c.forwardDrops.Load)
	reg.Gauge(prefix+".cluster.parked", c.parkedTotal.Load)
	reg.Gauge(prefix+".cluster.parked_flushed", c.parkedFlush.Load)
	reg.Gauge(prefix+".cluster.parked_shed", c.parkedShed.Load)
	// Per-shard ownership: 1 where this node's view assigns the shard here.
	// One gauge per shard keeps the exposition greppable per shard ID, which
	// is what a rebalance dashboard diffs across nodes.
	for s := 0; s < c.cfg.Shards; s++ {
		shard := s
		reg.Gauge(fmt.Sprintf("%s.cluster.shard.%d.owned", prefix, shard), func() int64 {
			owner, _, ok := c.mem.ownerOf(shard)
			if ok && owner == c.addr {
				return 1
			}
			return 0
		})
	}
	c.handoffHist.Store(reg.Histogram(prefix + ".cluster.handoff_ns"))
}

// Counters is a snapshot of the cluster's lifecycle counters, for tests and
// the load harness.
type Counters struct {
	Activations  int64
	Passivations int64
	HandoffsOut  int64
	FencedDrops  int64
	Forwards     int64
	ForwardDrops int64
	Parked       int64
	ParkedFlush  int64
	ParkedShed   int64
}

// CounterSnapshot returns the current lifecycle counters.
func (c *Cluster) CounterSnapshot() Counters {
	return Counters{
		Activations:  c.activations.Load(),
		Passivations: c.passivations.Load(),
		HandoffsOut:  c.handoffsOut.Load(),
		FencedDrops:  c.fencedDrops.Load(),
		Forwards:     c.forwards.Load(),
		ForwardDrops: c.forwardDrops.Load(),
		Parked:       c.parkedTotal.Load(),
		ParkedFlush:  c.parkedFlush.Load(),
		ParkedShed:   c.parkedShed.Load(),
	}
}
