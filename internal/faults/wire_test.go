package faults

import (
	"sync"
	"testing"
)

func TestWireOpShape(t *testing.T) {
	op := WireOp("nodeA", "nodeB", "remote.tPing")
	if op.Site != SiteWire {
		t.Fatalf("Site = %q, want %q", op.Site, SiteWire)
	}
	if op.Actor != "nodeA->nodeB" {
		t.Fatalf("Actor = %q", op.Actor)
	}
	if op.Msg != "remote.tPing" {
		t.Fatalf("Msg = %q", op.Msg)
	}
}

func TestOnLinkMatchesBothDirections(t *testing.T) {
	m := OnLink("A", "B")
	cases := []struct {
		op   Op
		want bool
	}{
		{WireOp("A", "B", "x"), true},
		{WireOp("B", "A", "x"), true},
		{WireOp("A", "C", "x"), false},
		{WireOp("C", "B", "x"), false},
		// Same actor string at a non-wire site must not match.
		{Op{Site: SiteSend, Actor: "A->B"}, false},
		// Malformed link (no arrow) must not match.
		{Op{Site: SiteWire, Actor: "AB"}, false},
	}
	for _, c := range cases {
		if got := m(c.op); got != c.want {
			t.Errorf("OnLink(A,B)(%v) = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestPartitionCutHealLifecycle(t *testing.T) {
	p := NewPartition()

	// No cuts: everything passes.
	if d := p.Decide(WireOp("A", "B", "x")); d.Action != ActNone {
		t.Fatalf("uncut link decided %v", d)
	}

	p.Cut("A", "B")
	// Both directions drop; the argument order of Cut is irrelevant.
	if d := p.Decide(WireOp("A", "B", "x")); d.Action != ActDrop {
		t.Fatalf("cut A->B decided %v", d)
	}
	if d := p.Decide(WireOp("B", "A", "x")); d.Action != ActDrop {
		t.Fatalf("cut B->A decided %v", d)
	}
	// Unrelated links are untouched.
	if d := p.Decide(WireOp("A", "C", "x")); d.Action != ActNone {
		t.Fatalf("uncut A->C decided %v", d)
	}
	// Non-wire sites pass through even between cut nodes, so a Partition
	// composes with message-level policies in a Chain.
	if d := p.Decide(Op{Site: SiteSend, Actor: "A->B"}); d.Action != ActNone {
		t.Fatalf("non-wire op decided %v", d)
	}
	if got := p.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}

	p.Heal("B", "A") // reversed order heals the same pair
	if d := p.Decide(WireOp("A", "B", "x")); d.Action != ActNone {
		t.Fatalf("healed link decided %v", d)
	}

	p.Cut("A", "B")
	p.Cut("A", "C")
	p.HealAll()
	for _, pair := range [][2]string{{"A", "B"}, {"A", "C"}} {
		if d := p.Decide(WireOp(pair[0], pair[1], "x")); d.Action != ActNone {
			t.Fatalf("link %v still cut after HealAll", pair)
		}
	}
}

func TestPartitionConcurrentUse(t *testing.T) {
	p := NewPartition()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				p.Cut("A", "B")
				p.Heal("A", "B")
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				p.Decide(WireOp("A", "B", "x"))
			}
		}()
	}
	wg.Wait()
}

func TestPartitionComposesInChain(t *testing.T) {
	p := NewPartition()
	p.Cut("A", "B")
	// Partition first: it drops cut wire frames, everything else falls
	// through to the next policy.
	ch := Chain(p, Drop(1, 1.0, OnActor("victim")))
	if d := ch.Decide(WireOp("A", "B", "x")); d.Action != ActDrop {
		t.Fatalf("chained partition did not drop: %v", d)
	}
	if d := ch.Decide(Op{Site: SiteSend, Actor: "victim"}); d.Action != ActDrop {
		t.Fatalf("downstream drop policy did not fire: %v", d)
	}
	if d := ch.Decide(Op{Site: SiteSend, Actor: "bystander"}); d.Action != ActNone {
		t.Fatalf("bystander op decided %v", d)
	}
}

// TestSeededWireDecisionsIgnoreUnmatchedTraffic guards the record/replay
// contract: a seeded injector's decision stream must be a pure function of
// (seed, matched-op sequence). Unmatched operations — control frames, other
// links, dial probes — must not advance the RNG, or a replay whose ambient
// traffic interleaves differently would see different injected faults than
// the recording did.
func TestSeededWireDecisionsIgnoreUnmatchedTraffic(t *testing.T) {
	match := All(AtSite(SiteWire), OnLink("A", "B"))
	decide := func(withNoise bool) []Action {
		inj := Drop(21, 0.4, match)
		var out []Action
		for i := 0; i < 100; i++ {
			if withNoise {
				// None of these match: wrong link, wrong site, dial probe
				// on a different pair.
				inj.Decide(WireOp("A", "C", "64B"))
				inj.Decide(Op{Site: SiteSend, Actor: "A->B", Msg: "64B"})
				inj.Decide(WireOp("C", "D", "dial"))
			}
			out = append(out, inj.Decide(WireOp("A", "B", "64B")).Action)
		}
		return out
	}
	clean, noisy := decide(false), decide(true)
	for i := range clean {
		if clean[i] != noisy[i] {
			t.Fatalf("decision %d differs once unmatched traffic interleaves: %v vs %v",
				i, clean[i], noisy[i])
		}
	}
	drops := 0
	for _, a := range clean {
		if a == ActDrop {
			drops++
		}
	}
	if drops == 0 || drops == len(clean) {
		t.Fatalf("drop pattern degenerate (%d/%d); seed 21 should mix", drops, len(clean))
	}
}

func TestPartitionIsolateNode(t *testing.T) {
	p := NewPartition()
	p.Isolate("B")

	// Every link touching B drops, in both directions, including dials.
	for _, op := range []Op{
		WireOp("A", "B", "x"), WireOp("B", "A", "x"),
		WireOp("C", "B", "dial"), WireOp("B", "C", "4B"),
	} {
		if d := p.Decide(op); d.Action != ActDrop {
			t.Fatalf("isolated node: %v decided %v, want drop", op, d)
		}
	}
	// Links not touching B are untouched.
	if d := p.Decide(WireOp("A", "C", "x")); d.Action != ActNone {
		t.Fatalf("A<->C decided %v while only B isolated", d)
	}

	p.HealNode("B")
	if d := p.Decide(WireOp("A", "B", "x")); d.Action != ActNone {
		t.Fatalf("healed node still dropping: %v", d)
	}

	// HealAll clears isolation too.
	p.Isolate("A")
	p.Cut("A", "C")
	p.HealAll()
	for _, op := range []Op{WireOp("A", "B", "x"), WireOp("A", "C", "x")} {
		if d := p.Decide(op); d.Action != ActNone {
			t.Fatalf("HealAll left %v dropping: %v", op, d)
		}
	}
}
