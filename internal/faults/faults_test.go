package faults

import (
	"testing"
	"time"
)

func TestCrashOnNthIsDeterministic(t *testing.T) {
	inj := CrashOnNth(3, AtSite(SiteBehavior))
	var got []int
	for i := 1; i <= 10; i++ {
		d := inj.Decide(Op{Site: SiteBehavior, Actor: "a"})
		if d.Action == ActPanic {
			got = append(got, i)
		}
	}
	want := []int{3, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("panics at %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("panics at %v, want %v", got, want)
		}
	}
	// Non-matching sites do not advance the counter.
	inj2 := CrashOnNth(2, AtSite(SiteBehavior))
	inj2.Decide(Op{Site: SiteSend})
	inj2.Decide(Op{Site: SiteBehavior})
	if d := inj2.Decide(Op{Site: SiteBehavior}); d.Action != ActPanic {
		t.Fatal("second matching op should panic despite interleaved non-matching ops")
	}
}

func TestSeededPoliciesReplayExactly(t *testing.T) {
	run := func() []Action {
		inj := Chain(
			Drop(7, 0.3, AtSite(SiteSend)),
			Delay(11, 0.5, time.Millisecond, AtSite(SiteReceive)),
			Panic(13, 0.2, AtSite(SiteBehavior)),
		)
		var out []Action
		sites := []Site{SiteSend, SiteReceive, SiteBehavior}
		for i := 0; i < 60; i++ {
			out = append(out, inj.Decide(Op{Site: sites[i%3], Actor: "x"}).Action)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical seeded runs: %v vs %v", i, a[i], b[i])
		}
	}
	// A different seed must eventually diverge.
	inj := Drop(99, 0.3, nil)
	diverged := false
	ref := Drop(7, 0.3, nil)
	for i := 0; i < 200; i++ {
		if inj.Decide(Op{}).Action != ref.Decide(Op{}).Action {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical 200-op decision streams")
	}
}

func TestSlowConsumerFiresEveryNthReceive(t *testing.T) {
	inj := SlowConsumer(4, 2*time.Millisecond, nil)
	fired := 0
	for i := 0; i < 12; i++ {
		// Sends never match, receives count.
		if d := inj.Decide(Op{Site: SiteSend}); d.Action != ActNone {
			t.Fatal("slow-consumer fired at a send site")
		}
		d := inj.Decide(Op{Site: SiteReceive})
		if d.Action == ActDelay {
			if d.Delay != 2*time.Millisecond {
				t.Fatalf("delay = %v", d.Delay)
			}
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times over 12 receives with every=4, want 3", fired)
	}
}

func TestChainFirstDecisionWinsButAllCountersAdvance(t *testing.T) {
	first := CrashOnNth(1, nil)  // fires on every op
	second := CrashOnNth(2, nil) // would fire on every 2nd
	c := Count(Chain(first, second))
	d := c.Decide(Op{})
	if d.Action != ActPanic {
		t.Fatalf("chained decision = %v", d.Action)
	}
	// second's counter advanced even though first won: its 2nd match fires.
	if d := second.Decide(Op{}); d.Action != ActPanic {
		t.Fatal("later chain members should still see every op")
	}
	if c.Panics() != 1 || c.Clean() != 0 {
		t.Fatalf("counter: panics=%d clean=%d", c.Panics(), c.Clean())
	}
}

func TestMatchers(t *testing.T) {
	m := All(AtSite(SiteSend), OnActor("buffer"), MsgType("pkg.putMsg"))
	if !m(Op{Site: SiteSend, Actor: "buffer", Msg: "pkg.putMsg"}) {
		t.Fatal("full match failed")
	}
	if m(Op{Site: SiteSend, Actor: "buffer", Msg: "pkg.getMsg"}) {
		t.Fatal("wrong msg type matched")
	}
	if m(Op{Site: SiteReceive, Actor: "buffer", Msg: "pkg.putMsg"}) {
		t.Fatal("wrong site matched")
	}
}

func TestWindowGatesInjection(t *testing.T) {
	w := NewWindow(CrashOnNth(1, AtSite(SiteWire))) // every matching op panics
	op := Op{Site: SiteWire, Actor: "a->b"}
	if d := w.Decide(op); d.Action != ActNone {
		t.Fatalf("closed window injected %v", d.Action)
	}
	if w.IsOpen() {
		t.Fatal("window reports open before Open")
	}
	w.Open()
	if !w.IsOpen() {
		t.Fatal("window reports closed after Open")
	}
	if d := w.Decide(op); d.Action != ActPanic {
		t.Fatalf("open window passed the op through (action %v)", d.Action)
	}
	w.Close()
	if d := w.Decide(op); d.Action != ActNone {
		t.Fatalf("re-closed window injected %v", d.Action)
	}
	// A Window composes in a Chain like any other injector, and a nil inner
	// injector is a no-op even when open.
	var nilWin Window
	nilWin.Open()
	if d := Chain(&nilWin, CrashOnNth(1, nil)).Decide(op); d.Action != ActPanic {
		t.Fatalf("chain skipped past an open empty window incorrectly (action %v)", d.Action)
	}
}
