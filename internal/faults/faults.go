// Package faults is a deterministic, seedable fault-injection harness for
// the three concurrency runtimes. The paper's course is ultimately about how
// concurrent programs fail — deadlock, lost wakeups, lost messages — and the
// misconception catalog (Table III) is a catalog of latent faults. This
// package makes those faults first-class and reproducible: an Injector is
// consulted at instrumented operation sites (message send, message receive,
// behavior invocation, lock entry, coroutine resume) and decides whether the
// operation proceeds normally, is delayed, is dropped, or panics.
//
// All policies are deterministic for a fixed seed and operation sequence, so
// a chaos run that fails can be replayed exactly. Policies carry their own
// counters, so "crash on the Nth matching operation" means the Nth operation
// *that policy has matched*, independent of other policies in a Chain.
package faults

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Site identifies an instrumented operation site in a runtime.
type Site string

// The sites the runtimes consult an Injector at.
const (
	// SiteSend: a message is about to be enqueued into a mailbox
	// (internal/actors). Drop makes it a deadletter; Delay stalls the
	// sender.
	SiteSend Site = "send"
	// SiteReceive: a message was dequeued and is about to be processed
	// (internal/actors). Delay models a slow consumer.
	SiteReceive Site = "receive"
	// SiteBehavior: an actor behavior is about to run (internal/actors).
	// Panic crashes the actor *instead of* running the behavior, so actor
	// state is never left half-mutated — the message is simply lost.
	SiteBehavior Site = "behavior"
	// SiteLock: a monitor is about to be acquired (internal/threads).
	// Delay models lock-path contention.
	SiteLock Site = "lock"
	// SiteResume: a cooperative task is about to be resumed
	// (internal/coro). Panic crashes the task at the scheduling point;
	// Drop skips the task for one round (starvation injection).
	SiteResume Site = "resume"
	// SiteWire: a frame is about to cross a transport link between two
	// nodes (internal/remote's memtransport). Drop models a lost frame;
	// Delay models link latency. Op.Actor is "src->dst" (see WireOp), so
	// matchers and the Partition injector can select by link.
	SiteWire Site = "wire"
)

// Op describes one operation presented to an Injector.
type Op struct {
	Site  Site
	Actor string // target actor / task / monitor identity
	Msg   string // message or operation detail (e.g. Go type of the message)
}

func (o Op) String() string { return fmt.Sprintf("%s %s %s", o.Site, o.Actor, o.Msg) }

// Action is what an Injector tells the runtime to do with an operation.
type Action int

const (
	// ActNone: proceed normally.
	ActNone Action = iota
	// ActDelay: proceed after Decision.Delay.
	ActDelay
	// ActDrop: discard the operation (lost message / skipped resume).
	ActDrop
	// ActPanic: crash the executing entity with an InjectedPanic.
	ActPanic
)

func (a Action) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActDelay:
		return "delay"
	case ActDrop:
		return "drop"
	case ActPanic:
		return "panic"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Decision is an Injector's verdict for one operation.
type Decision struct {
	Action Action
	Delay  time.Duration // meaningful when Action == ActDelay
}

// Injector decides, per operation, whether to inject a fault. Implementations
// must be safe for concurrent use: runtimes consult them from many
// goroutines.
type Injector interface {
	Decide(op Op) Decision
}

// InjectedPanic is the value thrown when an injector decides ActPanic, so
// handlers can distinguish injected crashes from genuine bugs.
type InjectedPanic struct{ Op Op }

func (p InjectedPanic) Error() string { return fmt.Sprintf("faults: injected panic at %s", p.Op) }

// Matcher selects the operations a policy applies to. A nil Matcher matches
// everything.
type Matcher func(Op) bool

// AtSite matches operations at the given site.
func AtSite(s Site) Matcher { return func(op Op) bool { return op.Site == s } }

// OnActor matches operations targeting the named actor/task/monitor.
func OnActor(name string) Matcher { return func(op Op) bool { return op.Actor == name } }

// MsgType matches operations whose Msg detail equals t (for actors this is
// the Go type of the message, e.g. "boundedbuffer.putMsg").
func MsgType(t string) Matcher { return func(op Op) bool { return op.Msg == t } }

// WireOp builds the Op a transport presents at SiteWire for a frame
// traveling from node src to node dst. msg describes the frame (typically
// the payload's Go type, or the frame kind for control frames).
func WireOp(src, dst, msg string) Op {
	return Op{Site: SiteWire, Actor: src + "->" + dst, Msg: msg}
}

// splitLink parses a SiteWire Op.Actor of the form "src->dst".
func splitLink(op Op) (src, dst string, ok bool) {
	if op.Site != SiteWire {
		return "", "", false
	}
	src, dst, ok = strings.Cut(op.Actor, "->")
	return src, dst, ok
}

// OnLink matches wire operations between nodes a and b, in either
// direction. Combine with Drop for a lossy link, Delay for a slow one.
func OnLink(a, b string) Matcher {
	return func(op Op) bool {
		src, dst, ok := splitLink(op)
		return ok && ((src == a && dst == b) || (src == b && dst == a))
	}
}

// All combines matchers conjunctively.
func All(ms ...Matcher) Matcher {
	return func(op Op) bool {
		for _, m := range ms {
			if m != nil && !m(op) {
				return false
			}
		}
		return true
	}
}

// None is the no-fault injector.
type None struct{}

// Decide always reports ActNone.
func (None) Decide(Op) Decision { return Decision{} }

// policy is the shared machinery: a matcher plus a per-policy counter of
// matched operations (1-based), optionally with a seeded RNG.
type policy struct {
	match Matcher
	n     atomic.Int64

	mu  sync.Mutex
	rng *rand.Rand
}

// hit reports whether op matches and, if so, the 1-based count of matched
// operations so far.
func (p *policy) hit(op Op) (int64, bool) {
	if p.match != nil && !p.match(op) {
		return 0, false
	}
	return p.n.Add(1), true
}

// roll draws a uniform float in [0,1) from the policy's seeded RNG.
func (p *policy) roll() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Float64()
}

type dropPolicy struct {
	policy
	prob float64
}

// Drop returns an injector that discards each matching operation with
// probability prob, deterministically for a fixed seed and op sequence.
func Drop(seed int64, prob float64, match Matcher) Injector {
	return &dropPolicy{policy: policy{match: match, rng: rand.New(rand.NewSource(seed))}, prob: prob}
}

func (d *dropPolicy) Decide(op Op) Decision {
	if _, ok := d.hit(op); !ok {
		return Decision{}
	}
	if d.roll() < d.prob {
		return Decision{Action: ActDrop}
	}
	return Decision{}
}

type delayPolicy struct {
	policy
	prob float64
	d    time.Duration
}

// Delay returns an injector that delays each matching operation by up to d
// (uniformly drawn) with probability prob.
func Delay(seed int64, prob float64, d time.Duration, match Matcher) Injector {
	return &delayPolicy{policy: policy{match: match, rng: rand.New(rand.NewSource(seed))}, prob: prob, d: d}
}

func (p *delayPolicy) Decide(op Op) Decision {
	if _, ok := p.hit(op); !ok {
		return Decision{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rng.Float64() >= p.prob {
		return Decision{}
	}
	return Decision{Action: ActDelay, Delay: time.Duration(p.rng.Int63n(int64(p.d) + 1))}
}

type panicPolicy struct {
	policy
	prob float64
}

// Panic returns an injector that crashes each matching operation with
// probability prob.
func Panic(seed int64, prob float64, match Matcher) Injector {
	return &panicPolicy{policy: policy{match: match, rng: rand.New(rand.NewSource(seed))}, prob: prob}
}

func (p *panicPolicy) Decide(op Op) Decision {
	if _, ok := p.hit(op); !ok {
		return Decision{}
	}
	if p.roll() < p.prob {
		return Decision{Action: ActPanic}
	}
	return Decision{}
}

type crashOnNth struct {
	policy
	every int64
}

// CrashOnNth returns an injector that crashes exactly the every-th matching
// operation, then every multiple of it (operations every, 2·every, ...).
// It is fully deterministic: no randomness, only the match count.
func CrashOnNth(every int64, match Matcher) Injector {
	if every <= 0 {
		every = 1
	}
	return &crashOnNth{policy: policy{match: match}, every: every}
}

func (c *crashOnNth) Decide(op Op) Decision {
	n, ok := c.hit(op)
	if !ok {
		return Decision{}
	}
	if n%c.every == 0 {
		return Decision{Action: ActPanic}
	}
	return Decision{}
}

type slowConsumer struct {
	policy
	every int64
	d     time.Duration
}

// SlowConsumer returns an injector that delays every every-th matching
// receive-site operation by d, modeling a consumer that periodically stalls.
// The matcher is combined with AtSite(SiteReceive).
func SlowConsumer(every int64, d time.Duration, match Matcher) Injector {
	if every <= 0 {
		every = 1
	}
	return &slowConsumer{policy: policy{match: All(AtSite(SiteReceive), match)}, every: every, d: d}
}

func (s *slowConsumer) Decide(op Op) Decision {
	n, ok := s.hit(op)
	if !ok {
		return Decision{}
	}
	if n%s.every == 0 {
		return Decision{Action: ActDelay, Delay: s.d}
	}
	return Decision{}
}

// Partition simulates network partitions at SiteWire: while a pair of node
// addresses is cut, every frame between them (both directions) is dropped.
// Unlike the probabilistic policies it is controlled imperatively — Cut
// opens a partition, Heal closes it — so a test can split two nodes
// mid-run, watch the protocol stall into retries and deadletters, heal the
// link, and assert the run converges. Operations at other sites pass
// through untouched, so a Partition composes in a Chain with message-level
// policies.
type Partition struct {
	mu       sync.Mutex
	cut      map[[2]string]bool
	isolated map[string]bool
	dropped  atomic.Int64
}

// NewPartition returns a Partition with no links cut.
func NewPartition() *Partition {
	return &Partition{cut: map[[2]string]bool{}, isolated: map[string]bool{}}
}

// pairKey normalizes an unordered node pair.
func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Cut partitions nodes a and b: frames between them drop in both directions
// until Heal.
func (p *Partition) Cut(a, b string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cut[pairKey(a, b)] = true
}

// Heal reconnects nodes a and b.
func (p *Partition) Heal(a, b string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.cut, pairKey(a, b))
}

// Isolate cuts node addr off from the entire network: every frame to or
// from it drops until HealNode. It is the node-kill chaos primitive for
// cluster tests — unlike Cut it needs no enumeration of peers, so a member
// discovered mid-run is severed too.
func (p *Partition) Isolate(addr string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.isolated[addr] = true
}

// HealNode reconnects an isolated node. Pairwise cuts involving it, if any,
// remain in force.
func (p *Partition) HealNode(addr string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.isolated, addr)
}

// HealAll reconnects every cut pair and every isolated node.
func (p *Partition) HealAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cut = map[[2]string]bool{}
	p.isolated = map[string]bool{}
}

// Dropped returns the number of frames dropped by this partition.
func (p *Partition) Dropped() int64 { return p.dropped.Load() }

// Decide drops wire operations between currently-cut pairs.
func (p *Partition) Decide(op Op) Decision {
	src, dst, ok := splitLink(op)
	if !ok {
		return Decision{}
	}
	p.mu.Lock()
	cut := p.cut[pairKey(src, dst)] || p.isolated[src] || p.isolated[dst]
	p.mu.Unlock()
	if !cut {
		return Decision{}
	}
	p.dropped.Add(1)
	return Decision{Action: ActDrop}
}

// Window gates another injector imperatively: while closed (the initial
// state) every operation passes through untouched; Open hands matching
// operations to the wrapped injector until Close. Like Partition it is
// phase-controlled rather than probabilistic — an overload chaos test opens
// the window for the spike, injects its delays only there, and closes it to
// measure clean recovery, all without rebuilding the injector chain
// mid-run.
type Window struct {
	in   Injector
	open atomic.Bool
}

// NewWindow wraps in with a closed injection window.
func NewWindow(in Injector) *Window { return &Window{in: in} }

// Open starts handing operations to the wrapped injector.
func (w *Window) Open() { w.open.Store(true) }

// Close stops injecting; subsequent operations pass through untouched.
func (w *Window) Close() { w.open.Store(false) }

// IsOpen reports whether the window is currently injecting.
func (w *Window) IsOpen() bool { return w.open.Load() }

// Decide delegates to the wrapped injector while open.
func (w *Window) Decide(op Op) Decision {
	if !w.open.Load() || w.in == nil {
		return Decision{}
	}
	return w.in.Decide(op)
}

// Chain consults injectors in order and returns the first non-ActNone
// decision. Every injector sees every operation (so per-policy counters
// advance uniformly even when an earlier policy fires).
func Chain(injs ...Injector) Injector { return chain(injs) }

type chain []Injector

func (c chain) Decide(op Op) Decision {
	out := Decision{}
	for _, in := range c {
		if in == nil {
			continue
		}
		d := in.Decide(op)
		if out.Action == ActNone && d.Action != ActNone {
			out = d
		}
	}
	return out
}

// Counter wraps an injector and counts the decisions it hands out, for
// accounting invariants in tests ("dropped + delivered == sent").
type Counter struct {
	in                           Injector
	none, delays, drops, panics_ atomic.Int64
}

// Count wraps in with a decision counter.
func Count(in Injector) *Counter { return &Counter{in: in} }

// Decide delegates to the wrapped injector and tallies the outcome.
func (c *Counter) Decide(op Op) Decision {
	d := c.in.Decide(op)
	switch d.Action {
	case ActDelay:
		c.delays.Add(1)
	case ActDrop:
		c.drops.Add(1)
	case ActPanic:
		c.panics_.Add(1)
	default:
		c.none.Add(1)
	}
	return d
}

// Clean returns the number of operations that passed through unfaulted.
func (c *Counter) Clean() int64 { return c.none.Load() }

// Delays returns the number of injected delays.
func (c *Counter) Delays() int64 { return c.delays.Load() }

// Drops returns the number of injected drops.
func (c *Counter) Drops() int64 { return c.drops.Load() }

// Panics returns the number of injected panics.
func (c *Counter) Panics() int64 { return c.panics_.Load() }
