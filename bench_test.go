// Package repro_test is the top-level benchmark harness: one benchmark per
// paper table/figure plus the cross-model performance matrix and the
// ablations called out in DESIGN.md §5.
//
// Experiment index (see DESIGN.md §3 and EXPERIMENTS.md):
//
//	Figure 3  -> BenchmarkFig3Explore        (exhaustive PARA interleavings)
//	Figure 4  -> BenchmarkFig4Explore        (EXC_ACC + WAIT/NOTIFY space)
//	Figure 5  -> BenchmarkFig5Explore        (message-delivery space)
//	Figs 6-7  -> BenchmarkTest1Bridge*       (Test-1 bridge ground truths)
//	Table I   -> (static catalog; no bench)
//	Table II  -> BenchmarkStudyTable2        (full simulated study)
//	Table III -> BenchmarkStudyTable3        (misconception attribution)
//	§IV perf  -> BenchmarkProblem/*          (9 problems x 3 models)
//	          -> BenchmarkSpawn*, BenchmarkComm*, BenchmarkSync* (micro)
//	Ablations -> BenchmarkAblation*
//	Hot path  -> BenchmarkMailbox*, BenchmarkDispatch* (docs/PERF.md)
package repro_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/actors"
	"repro/internal/core"
	"repro/internal/coro"
	_ "repro/internal/problems/registry"
	"repro/internal/pseudocode"
	"repro/internal/study"
	"repro/internal/threads"
)

// --- Figures 3-5: exhaustive exploration of the paper's example programs ---

const fig3Src = `
DEFINE print()
    PRINT "hi "
    PRINT "there "
ENDDEF
PARA
    print()
    PRINT "world "
ENDPARA
`

const fig4Src = `
x = 10
DEFINE changeX(diff)
    EXC_ACC
        WHILE x + diff < 0
            WAIT()
        ENDWHILE
        x = x + diff
        NOTIFY()
    END_EXC_ACC
ENDDEF
PARA
    changeX(-11)
    changeX(1)
ENDPARA
PRINTLN x
`

const fig5Src = `
CLASS Receiver
    DEFINE receive
        ON_RECEIVING
            MESSAGE.h(var)
                PRINT var
            MESSAGE.w(var)
                PRINTLN var
    ENDDEF
ENDCLASS
m1 = MESSAGE.h("hello ")
m2 = MESSAGE.w("world")
r1 = new Receiver()
r1.receive()
Send(m1).To(r1)
Send(m2).To(r1)
`

func benchExplore(b *testing.B, src string, wantOutputs int) {
	b.Helper()
	prog, err := pseudocode.CompileSource(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pseudocode.Explore(prog, pseudocode.ExploreOpts{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Outputs) != wantOutputs {
			b.Fatalf("outputs = %d, want %d", len(res.Outputs), wantOutputs)
		}
	}
}

func BenchmarkFig3Explore(b *testing.B) { benchExplore(b, fig3Src, 3) }
func BenchmarkFig4Explore(b *testing.B) { benchExplore(b, fig4Src, 1) }
func BenchmarkFig5Explore(b *testing.B) { benchExplore(b, fig5Src, 2) }

// --- Figures 6-7 / Tables II-III: the simulated study ---

func BenchmarkTest1BridgeQuestions(b *testing.B) {
	// Ground-truth computation for the Test-1 question bank (cached after
	// the first call; this measures the steady-state cost).
	for i := 0; i < b.N; i++ {
		bank, err := study.BuildBank()
		if err != nil {
			b.Fatal(err)
		}
		if len(bank.Questions) != 16 {
			b.Fatalf("bank = %d questions", len(bank.Questions))
		}
	}
}

func BenchmarkStudyTable2(b *testing.B) {
	if _, err := study.BuildBank(); err != nil { // pay exploration once
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := study.Run(study.Config{Seed: int64(i + 1), PermIters: 2000})
		if err != nil {
			b.Fatal(err)
		}
		if res.Session2Mean == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkStudyTable3(b *testing.B) {
	if _, err := study.BuildBank(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := study.Run(study.Config{Seed: int64(i + 1), PermIters: 100})
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Table3().String()
	}
}

// --- The cross-model performance matrix (the course's "efficiency" axis) ---

var benchParams = map[string]core.Params{
	"boundedbuffer":      {"producers": 4, "consumers": 4, "items": 500, "capacity": 16},
	"diningphilosophers": {"philosophers": 5, "meals": 100},
	"readerswriters":     {"readers": 6, "writers": 2, "ops": 250},
	"sleepingbarber":     {"barbers": 2, "chairs": 4, "customers": 500},
	"partymatching":      {"pairs": 250},
	"singlelanebridge":   {"red": 3, "blue": 3, "crossings": 50},
	"bookinventory":      {"titles": 10, "clients": 6, "ops": 250, "initial": 20},
	"sumworkers":         {"workers": 8, "n": 100000},
	"threadpool":         {"workers": 4, "tasks": 1000, "queue": 16},
}

func BenchmarkProblem(b *testing.B) {
	for _, name := range core.Default.Names() {
		spec, err := core.Default.Get(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range core.AllModels {
			if spec.Runs[m] == nil {
				continue // chaos variants are actors-only
			}
			b.Run(fmt.Sprintf("%s/%s", name, m), func(b *testing.B) {
				params := benchParams[name]
				for i := 0; i < b.N; i++ {
					if _, err := spec.Run(m, params, int64(i)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Mailbox & dispatcher (actor hot path; see docs/PERF.md) ---

// BenchmarkMailboxTellThroughput is the end-to-end tentpole number: 8
// concurrent senders flooding one actor through the public Tell path, under
// each dispatcher. The default config rides the chunked MPSC ring mailbox;
// see internal/actors for the isolated ring-vs-locked comparison.
func BenchmarkMailboxTellThroughput(b *testing.B) {
	for _, mode := range []actors.DispatchMode{actors.Dedicated, actors.Pooled} {
		b.Run(mode.String(), func(b *testing.B) {
			sys := actors.NewSystem(actors.Config{Dispatcher: mode})
			defer sys.Shutdown()
			done := make(chan struct{})
			count := 0
			sink := sys.MustSpawn("sink", func(ctx *actors.Context, msg any) {
				count++
				if count == b.N {
					close(done)
				}
			})
			b.ResetTimer()
			var wg sync.WaitGroup
			for s := 0; s < 8; s++ {
				n := b.N / 8
				if s < b.N%8 {
					n++
				}
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						sink.Tell(i)
					}
				}(n)
			}
			wg.Wait()
			if b.N > 0 {
				<-done
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/sec")
		})
	}
}

// BenchmarkDispatchSpawn100kIdle spawns 100k no-op actors under each
// dispatcher and reports goroutines per actor: ~1.0 dedicated, ~0 pooled.
func BenchmarkDispatchSpawn100kIdle(b *testing.B) {
	const idle = 100000
	for _, mode := range []actors.DispatchMode{actors.Dedicated, actors.Pooled} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				before := runtime.NumGoroutine()
				sys := actors.NewSystem(actors.Config{Dispatcher: mode})
				for j := 0; j < idle; j++ {
					sys.MustSpawn("idle", func(ctx *actors.Context, msg any) {})
				}
				b.ReportMetric(float64(runtime.NumGoroutine()-before)/idle, "goroutines/actor")
				b.StopTimer()
				sys.Shutdown()
				b.StartTimer()
			}
		})
	}
}

// --- Microbenchmarks: task creation, communication, synchronization ---

func BenchmarkSpawnGoroutine(b *testing.B) {
	var wg sync.WaitGroup
	for i := 0; i < b.N; i++ {
		wg.Add(1)
		go wg.Done()
	}
	wg.Wait()
}

func BenchmarkSpawnActor(b *testing.B) {
	sys := actors.NewSystem(actors.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.MustSpawn("bench", func(ctx *actors.Context, msg any) {})
	}
	b.StopTimer()
	sys.Shutdown()
}

func BenchmarkSpawnCoroutine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		co := coro.New(func(y *coro.Yielder, in any) any { return in })
		if _, _, err := co.Resume(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCommMonitorHandoff(b *testing.B) {
	var m threads.Monitor
	value := 0
	full := false
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			m.Enter()
			m.WaitUntil("full", func() bool { return full })
			full = false
			_ = value
			m.NotifyAll("empty")
			m.Exit()
		}
	}()
	for i := 0; i < b.N; i++ {
		m.Enter()
		m.WaitUntil("empty", func() bool { return !full })
		value = i
		full = true
		m.NotifyAll("full")
		m.Exit()
	}
	<-done
}

func BenchmarkCommActorMessage(b *testing.B) {
	sys := actors.NewSystem(actors.Config{})
	defer sys.Shutdown()
	done := make(chan struct{})
	count := 0
	sink := sys.MustSpawn("sink", func(ctx *actors.Context, msg any) {
		count++
		if count == b.N {
			close(done)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink.Tell(i)
	}
	<-done
}

func BenchmarkCommCoroutineYield(b *testing.B) {
	co := coro.New(func(y *coro.Yielder, in any) any {
		for {
			y.Yield(nil)
		}
	})
	for i := 0; i < b.N; i++ {
		if _, _, err := co.Resume(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSyncMonitorUncontended(b *testing.B) {
	var m threads.Monitor
	for i := 0; i < b.N; i++ {
		m.Enter()
		m.Exit()
	}
}

func BenchmarkSyncMonitorContended(b *testing.B) {
	var m threads.Monitor
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.Enter()
			m.Exit()
		}
	})
}

func BenchmarkSyncSemaphore(b *testing.B) {
	s := threads.NewSemaphore(1)
	for i := 0; i < b.N; i++ {
		s.Acquire()
		s.Release()
	}
}

// --- Ablations (DESIGN.md §5) ---

func BenchmarkAblationTicketLockVsMutex(b *testing.B) {
	b.Run("ticketlock", func(b *testing.B) {
		var l threads.TicketLock
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				l.Lock()
				l.Unlock()
			}
		})
	})
	b.Run("sync.Mutex", func(b *testing.B) {
		var l sync.Mutex
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				l.Lock()
				l.Unlock()
			}
		})
	})
}

func BenchmarkAblationMailboxPerturbation(b *testing.B) {
	for _, cfg := range []struct {
		name string
		seed int64
	}{{"fifo", 0}, {"perturbed", 42}} {
		b.Run(cfg.name, func(b *testing.B) {
			sys := actors.NewSystem(actors.Config{PerturbSeed: cfg.seed})
			defer sys.Shutdown()
			done := make(chan struct{})
			count := 0
			sink := sys.MustSpawn("sink", func(ctx *actors.Context, msg any) {
				count++
				if count == b.N {
					close(done)
				}
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink.Tell(i)
			}
			<-done
		})
	}
}

func BenchmarkAblationMailboxBounded(b *testing.B) {
	for _, cfg := range []struct {
		name string
		cap  int
	}{{"unbounded", 0}, {"cap-1024", 1024}, {"cap-16", 16}} {
		b.Run(cfg.name, func(b *testing.B) {
			sys := actors.NewSystem(actors.Config{MailboxCap: cfg.cap})
			defer sys.Shutdown()
			done := make(chan struct{})
			count := 0
			sink := sys.MustSpawn("sink", func(ctx *actors.Context, msg any) {
				count++
				if count == b.N {
					close(done)
				}
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink.Tell(i)
			}
			<-done
		})
	}
}

func BenchmarkAblationExploreMemo(b *testing.B) {
	prog, err := pseudocode.CompileSource(fig3Src)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("memoized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pseudocode.Explore(prog, pseudocode.ExploreOpts{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pseudocode.Explore(prog, pseudocode.ExploreOpts{NoMemo: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAblationNotifyOneVsAll(b *testing.B) {
	prog, err := pseudocode.CompileSource(fig4Src)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		sem  pseudocode.Semantics
	}{
		{"notify-all", pseudocode.Semantics{}},
		{"notify-one", pseudocode.Semantics{NotifyWakesOne: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pseudocode.Explore(prog, pseudocode.ExploreOpts{Sem: cfg.sem}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationCoroHandoff(b *testing.B) {
	// Coroutine handoff (channel handshake, as implemented) vs a raw
	// channel ping-pong — what the handshake would cost without the
	// status machine.
	b.Run("coroutine", func(b *testing.B) {
		co := coro.New(func(y *coro.Yielder, in any) any {
			for {
				y.Yield(nil)
			}
		})
		for i := 0; i < b.N; i++ {
			co.Resume(nil)
		}
	})
	b.Run("rawchannels", func(b *testing.B) {
		in := make(chan any)
		out := make(chan any)
		go func() {
			for range in {
				out <- nil
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			in <- nil
			<-out
		}
		b.StopTimer()
		close(in)
	})
}
