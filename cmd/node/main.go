// Command node runs one side of a distributed actor deployment over real
// TCP: location transparency as a program you can run in two terminals
// instead of two goroutines.
//
// Serve the single-lane bridge controller on one node:
//
//	node -serve -listen 127.0.0.1:7001
//
// Drive cars against it from another (or the same) machine:
//
//	node -drive bridge@127.0.0.1:7001 -red 3 -blue 3 -crossings 20
//
// Or run both ends in one process for a self-contained demo:
//
//	node -demo
//
// The drive side prints the audited metrics (the same safety invariant the
// in-process variants validate) plus the wire counters, so a lossy or
// flapping network shows up as deadletters and reconnects, not as silent
// weirdness.
//
// -debug ADDR additionally serves the live observability endpoints on ADDR:
// /debug/metrics is a Prometheus scrape of the node's wire counters,
// heartbeat RTT histogram, and the actor system's mailbox/handler
// latencies; /debug/flight pulls the flight recorder's retained trace as
// Chrome trace JSON (open it in Perfetto). See docs/OBSERVABILITY.md.
//
// -demo also supports deterministic record/replay (docs/DETECT.md): with
// -record FILE it runs over the in-process transport (a schedule cannot be
// forced onto real sockets), optionally lossy via -drop N, and saves the
// wire schedule; -replay FILE re-executes a saved schedule with no
// injector, reproducing the recorded run's frame fates:
//
//	node -demo -drop 20 -record run.wirelog
//	node -demo -replay run.wirelog
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/actors"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/problems/singlelanebridge"
	"repro/internal/remote"
	"repro/internal/trace"
)

func main() {
	serve := flag.Bool("serve", false, "serve the bridge controller and block")
	drive := flag.String("drive", "", "drive cars against a bridge at name@host:port")
	demo := flag.Bool("demo", false, "run both nodes in-process over loopback TCP")
	listen := flag.String("listen", "127.0.0.1:0", "listen address for this node")
	red := flag.Int("red", 3, "red cars")
	blue := flag.Int("blue", 3, "blue cars")
	crossings := flag.Int("crossings", 20, "crossings per car")
	seed := flag.Int64("seed", 1, "workload seed")
	debugAddr := flag.String("debug", "", "serve /debug/metrics, /debug/flight and /debug/trace on this address (e.g. 127.0.0.1:6060)")
	traceSample := flag.Int("trace-sample", 64, "(with -debug) sample 1 in N sends for distributed tracing; 0 disables")
	record := flag.String("record", "", "(-demo only) record the wire schedule to FILE; runs over the in-process transport")
	replay := flag.String("replay", "", "(-demo only) re-execute the wire schedule in FILE; runs over the in-process transport")
	drop := flag.Int("drop", 0, "(-demo with -record) drop N%% of wire frames, seeded")
	flag.Parse()

	if (*record != "" || *replay != "" || *drop > 0) && !*demo {
		fmt.Fprintln(os.Stderr, "node: -record/-replay/-drop need -demo (a schedule cannot be forced onto real sockets)")
		os.Exit(2)
	}
	if *record != "" && *replay != "" {
		fmt.Fprintln(os.Stderr, "node: -record and -replay are mutually exclusive")
		os.Exit(2)
	}
	var replayRec *remote.WireRecording
	if *replay != "" {
		var err error
		replayRec, err = remote.LoadWireRecording(*replay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "node: %v\n", err)
			os.Exit(1)
		}
		// A recording pins the workload seed too; an explicit -seed wins.
		seedSet := false
		flag.Visit(func(f *flag.Flag) { seedSet = seedSet || f.Name == "seed" })
		if !seedSet {
			*seed = replayRec.Seed
		}
	}

	st := newObsStack(*debugAddr, *traceSample)
	switch {
	case *serve:
		runServe(*listen, st)
	case *drive != "":
		runDrive(*listen, *drive, *red, *blue, *crossings, *seed, st)
	case *demo:
		runDemo(*red, *blue, *crossings, *seed, st, *record, replayRec, *drop)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// obsStack is the -debug observability wiring: one registry and one flight
// recorder shared by every node this process runs, served over HTTP. A nil
// *obsStack is valid and means "not asked for" — every method degrades to
// the uninstrumented path.
type obsStack struct {
	reg    *metrics.Registry
	rec    *trace.Recorder
	tracer *trace.Tracer
}

func newObsStack(addr string, traceSample int) *obsStack {
	if addr == "" {
		return nil
	}
	st := &obsStack{reg: metrics.NewRegistry(), rec: trace.NewFlightRecorder(0)}
	if traceSample > 0 {
		st.tracer = trace.NewTracer(traceSample, 0)
	}
	_, bound, err := obs.ServeDebug(addr, obs.Debug{Registry: st.reg, Recorder: st.rec, Tracer: st.tracer})
	if err != nil {
		fmt.Fprintf(os.Stderr, "node: -debug: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("debug: http://%s/debug/metrics, /debug/flight and /debug/trace\n", bound)
	return st
}

// system returns the actor system a node should serve: instrumented (with
// the prefix distinguishing this node's series) when -debug is on, nil
// otherwise so the node creates and owns a default one.
func (st *obsStack) system(prefix string) *actors.System {
	if st == nil {
		return nil
	}
	if st.tracer != nil && st.tracer.NodeName() == "" {
		st.tracer.SetNode(prefix)
	}
	return actors.NewSystem(actors.Config{
		Obs:      actors.NewObs(st.reg, prefix+".actors"),
		Recorder: st.rec,
		Tracer:   st.tracer,
	})
}

// newTCPNode builds one loopback-TCP node via newNode.
func newTCPNode(listen string, st *obsStack, prefix string) (n *remote.Node, close func()) {
	return newNode(remote.Config{ListenAddr: listen, Transport: remote.TCPTransport{}}, st, prefix)
}

// newNode builds one node from cfg, wired into the -debug observability
// stack when there is one. close releases the node and, when the stack
// supplied the system, shuts the system down too (a node only owns a system
// it created itself).
func newNode(cfg remote.Config, st *obsStack, prefix string) (n *remote.Node, close func()) {
	sys := st.system(prefix)
	cfg.System = sys
	n, err := remote.NewNode(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "node: %v\n", err)
		os.Exit(1)
	}
	if st != nil {
		n.RegisterMetrics(st.reg, prefix)
	}
	return n, func() {
		_ = n.Close()
		if sys != nil {
			sys.Shutdown()
		}
	}
}

func runServe(listen string, st *obsStack) {
	n, close := newTCPNode(listen, st, "serve")
	defer close()
	singlelanebridge.ServeRemoteBridge(n)
	fmt.Printf("bridge controller serving at bridge@%s\n", n.Addr())
	fmt.Printf("drive cars with: node -drive bridge@%s\n", n.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	stats := n.Stats()
	fmt.Printf("\nshutting down: received=%d deadletters=%d\n", stats.Received, stats.RemoteDeadLetters)
}

func runDrive(listen, target string, red, blue, crossings int, seed int64, st *obsStack) {
	_, addr, ok := strings.Cut(target, "@")
	if !ok {
		fmt.Fprintf(os.Stderr, "node: -drive wants name@host:port, got %q\n", target)
		os.Exit(2)
	}
	n, close := newTCPNode(listen, st, "drive")
	defer close()
	bridge, err := n.RefFor(target)
	if err != nil {
		fmt.Fprintf(os.Stderr, "node: %v\n", err)
		os.Exit(1)
	}
	if err := n.Connect(addr, 5*time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "node: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("driving %d red + %d blue cars, %d crossings each, against %s\n",
		red, blue, crossings, target)

	start := time.Now()
	m, err := singlelanebridge.DriveRemoteCars(n.System(), bridge, red, blue, crossings, seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "node: %v\n", err)
		os.Exit(1)
	}
	printRun(m, time.Since(start), n)
}

func runDemo(red, blue, crossings int, seed int64, st *obsStack, recordPath string, replayRec *remote.WireRecording, dropPct int) {
	// Record/replay needs the in-process transport: only MemNetwork can
	// capture or force a frame schedule. The plain demo keeps loopback TCP.
	var (
		memNet *remote.MemNetwork
		rec    *remote.WireRecording
	)
	if recordPath != "" || replayRec != nil {
		memNet = remote.NewMemNetwork()
		if replayRec != nil {
			memNet.Replay(replayRec)
			fmt.Printf("demo: replaying %d recorded frames (%d drops), seed %d\n",
				replayRec.Len(), replayRec.Drops(), seed)
		} else {
			if dropPct > 0 {
				memNet.SetInjector(faults.Drop(seed+7, float64(dropPct)/100, faults.AtSite(faults.SiteWire)))
			}
			rec = memNet.Record(seed)
		}
	}
	mk := func(addr, prefix string) (*remote.Node, func()) {
		if memNet == nil {
			return newTCPNode("127.0.0.1:0", st, prefix)
		}
		return newNode(remote.Config{ListenAddr: addr, Transport: memNet.Endpoint(addr)}, st, prefix)
	}

	server, closeServer := mk("server", "server")
	defer closeServer()
	singlelanebridge.ServeRemoteBridge(server)
	if memNet == nil {
		fmt.Printf("demo: bridge controller at bridge@%s (loopback TCP)\n", server.Addr())
	} else {
		fmt.Printf("demo: bridge controller at bridge@%s (in-process transport)\n", server.Addr())
	}

	client, closeClient := mk("client", "client")
	defer closeClient()
	bridge, err := client.RefFor("bridge@" + server.Addr())
	if err == nil {
		err = client.Connect(server.Addr(), 5*time.Second)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "node: %v\n", err)
		os.Exit(1)
	}
	start := time.Now()
	m, err := singlelanebridge.DriveRemoteCars(client.System(), bridge, red, blue, crossings, seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "node: %v\n", err)
		os.Exit(1)
	}
	printRun(m, time.Since(start), client)
	if rec != nil {
		if err := rec.Save(recordPath); err != nil {
			fmt.Fprintf(os.Stderr, "node: save recording: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d wire frames (%d dropped) to %s; replay with: node -demo -replay %s\n",
			rec.Len(), rec.Drops(), recordPath, recordPath)
	}
}

func printRun(m core.Metrics, elapsed time.Duration, n *remote.Node) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("completed in %s\n", elapsed.Round(time.Millisecond))
	for _, k := range keys {
		fmt.Printf("  %-18s %d\n", k, m[k])
	}
	reg := metrics.NewRegistry()
	n.RegisterMetrics(reg, "node")
	n.System().RegisterMetrics(reg, "system")
	fmt.Println("wire and system metrics:")
	for _, s := range reg.Snapshot() {
		if s.Value != 0 {
			fmt.Printf("  %-28s %d\n", s.Name, s.Value)
		}
	}
}
