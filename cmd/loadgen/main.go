// Command loadgen drives the cluster load harness: millions of simulated
// chat/presence clients multiplexed onto presence grains across a local
// 3–5 node cluster, with one node killed mid-run to measure tail latency
// during the rebalance and the recovery time after the kill.
//
// Usage:
//
//	loadgen [-nodes N] [-clients N] [-grains N] [-workers N] [-shards N]
//	        [-rebalance-ops N] [-kill=false] [-smoke] [-json FILE]
//	        [-trace] [-trace-sample N] [-trace-out FILE] [-trace-check]
//
// -trace turns on distributed tracing (sampling 1 in -trace-sample client
// operations, default 64; 1 traces everything): after the kill/rebalance
// phase the run reports the slowest traces with their per-stage latency
// attribution (mailbox wait, handler, wire, credit stall, handoff park),
// -trace-out writes the assembled cross-node timeline as Perfetto/Chrome
// trace JSON (load it at ui.perfetto.dev), and -trace-check exits nonzero
// unless at least one complete cross-node trace's stage ledger telescopes
// to within 10% of its end-to-end latency — the CI gate.
//
// The committed baseline (BENCH_cluster.json) comes from the full-scale
// run:
//
//	go run ./cmd/loadgen -json BENCH_cluster.json
//
// -smoke shrinks everything for CI: a few tens of thousands of clients,
// small grain and worker counts, fast failure-detection clocks, same code
// path end to end.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cluster/harness"
	"repro/internal/trace"
)

func main() {
	nodes := flag.Int("nodes", 4, "cluster size (3-5)")
	clients := flag.Int64("clients", 1_000_000, "simulated client population")
	grains := flag.Int("grains", 4096, "presence grains the clients multiplex onto")
	workers := flag.Int("workers", 64, "driver goroutines")
	shards := flag.Int("shards", 128, "ring size")
	rebalanceOps := flag.Int64("rebalance-ops", 0, "ops driven through the kill window (default clients/5)")
	kill := flag.Bool("kill", true, "kill one node after the steady phase")
	smoke := flag.Bool("smoke", false, "reduced CI preset (overrides sizes unless set explicitly)")
	jsonPath := flag.String("json", "", "write the report to this file (BENCH_cluster.json)")
	traceOn := flag.Bool("trace", false, "sample distributed traces and report the slowest with stage attribution")
	traceSample := flag.Int("trace-sample", 64, "trace 1 in N client operations (1 = every op)")
	traceOut := flag.String("trace-out", "", "write assembled traces as Perfetto/Chrome trace JSON to this file")
	traceCheck := flag.Bool("trace-check", false, "exit nonzero unless a complete cross-node trace telescopes within 10%")
	flag.Parse()

	cfg := harness.Config{
		Nodes:        *nodes,
		Clients:      *clients,
		Grains:       *grains,
		Workers:      *workers,
		Shards:       *shards,
		RebalanceOps: *rebalanceOps,
		Kill:         *kill,
		Seed:         1,
	}
	if *traceOn || *traceOut != "" || *traceCheck {
		cfg.TraceSample = *traceSample
	}
	if *smoke {
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["nodes"] {
			cfg.Nodes = 3
		}
		if !set["clients"] {
			cfg.Clients = 30_000
		}
		if !set["grains"] {
			cfg.Grains = 256
		}
		if !set["workers"] {
			cfg.Workers = 32
		}
		if !set["shards"] {
			cfg.Shards = 32
		}
		cfg.HeartbeatInterval = 2 * time.Millisecond
		cfg.HeartbeatTimeout = 20 * time.Millisecond
		cfg.SuspectAfter = 60 * time.Millisecond
	}

	rep, err := harness.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("cluster %d nodes, %d clients on %d grains, %d workers\n",
		rep.Nodes, rep.Clients, rep.Grains, rep.Workers)
	fmt.Printf("steady:    %.1fk ops/sec (%.1fk wire msgs/sec), p50 %.2f ms, p99 %.2f ms over %d ops\n",
		rep.SteadyRate/1e3, rep.SteadyWireRate/1e3,
		ms(rep.SteadyP50), ms(rep.SteadyP99), rep.SteadyOps)
	if rep.RebalanceOps > 0 {
		fmt.Printf("rebalance: %.1fk ops/sec, p99 %.2f ms over %d ops through the kill\n",
			rep.RebalanceRate/1e3, ms(rep.RebalanceP99), rep.RebalanceOps)
		fmt.Printf("recovery:  %.1f ms from kill to first op on a re-homed grain\n", ms(rep.RecoveryTime))
	}
	fmt.Printf("lifecycle: %d activations, %d handoffs, %d parked (%d flushed), %d forwards\n",
		rep.Activations, rep.Handoffs, rep.Parked, rep.ParkedFlush, rep.Forwards)

	if tr := rep.Trace; tr != nil {
		fmt.Printf("tracing:   1/%d sampled — %d spans in %d traces (%d cross-node, %d complete, %d dead spans)\n",
			tr.SampleEvery, tr.Spans, tr.Traces, tr.CrossNode, tr.Complete, tr.DeadSpans)
		fmt.Println("slowest traces (stage attribution):")
		for _, st := range tr.Slowest {
			status := ""
			if !st.Complete {
				status = " INCOMPLETE"
			}
			if st.Dead > 0 {
				status += fmt.Sprintf(" dead=%d", st.Dead)
			}
			fmt.Printf("  %s  %8.2f ms  %d hops on %v  coverage %.2f%s\n",
				st.Trace, float64(st.DurationNS)/1e6, st.Hops, st.Nodes, st.Coverage, status)
			fmt.Printf("    ")
			for _, stage := range []string{"mailbox", "handler", "wire", "stall", "park"} {
				if ns := st.StagesNS[stage]; ns > 0 {
					fmt.Printf(" %s=%.2fms", stage, float64(ns)/1e6)
				}
			}
			fmt.Println()
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
				os.Exit(1)
			}
			if err := trace.ExportChromeSpans(f, rep.TraceViews, nil); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: trace export: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("tracing:   %d traces exported to %s (open at ui.perfetto.dev)\n",
				len(rep.TraceViews), *traceOut)
		}
		if *traceCheck {
			if err := checkTraces(rep.TraceViews); err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: trace check FAILED: %v\n", err)
				os.Exit(1)
			}
			fmt.Println("tracing:   check passed — complete cross-node trace telescopes within 10%")
		}
	}

	if *jsonPath != "" {
		doc := struct {
			Note    string         `json:"note"`
			Command string         `json:"command"`
			Report  harness.Report `json:"report"`
		}{
			Note: "Cluster load-harness baseline: steady-state throughput, tail " +
				"latency during a mid-run node kill, and recovery time to the " +
				"first op on a re-homed grain. Machine-dependent: compare shapes " +
				"(bounded rebalance p99, recovery near SuspectAfter + activation " +
				"grace), not absolute rates.",
			Command: "go run ./cmd/loadgen -json BENCH_cluster.json",
			Report:  rep,
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

// checkTraces is the -trace-check gate: at least one assembled trace must
// cross nodes with every span finished cleanly, carry mailbox, handler and
// wire time in its ledger, and have a stage sum within 10% of its
// end-to-end latency.
func checkTraces(views []trace.TraceView) error {
	if len(views) == 0 {
		return fmt.Errorf("no traces assembled")
	}
	var cross, complete int
	for _, tv := range views {
		if !tv.CrossNode() {
			continue
		}
		cross++
		if !tv.Complete() {
			continue
		}
		complete++
		if c := tv.Coverage(); c < 0.9 || c > 1.1 {
			continue
		}
		if tv.StageNS[trace.StageMailbox] > 0 &&
			tv.StageNS[trace.StageHandler] > 0 &&
			tv.StageNS[trace.StageWire] > 0 {
			return nil
		}
	}
	return fmt.Errorf("none of %d traces (%d cross-node, %d complete) telescopes with a full stage ledger",
		len(views), cross, complete)
}
