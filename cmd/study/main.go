// Command study runs the simulated reproduction of the paper's Test-1
// study (Section V-VI): it builds the question bank with explorer ground
// truths, generates a 16-student cohort with Table III's misconception
// prevalences, administers both sessions, and prints the analogues of
// Tables I-III plus the survey findings.
//
// Usage:
//
//	study [-seed N] [-hierarchy] [-show-questions] [-surveys] [-students]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/study"
)

func main() {
	seed := flag.Int64("seed", 7, "cohort seed")
	hierarchy := flag.Bool("hierarchy", false, "print only Table I (misconception hierarchy)")
	showQuestions := flag.Bool("show-questions", false, "print the generated Test-1 questions with ground truths")
	surveys := flag.Bool("surveys", false, "print the simulated survey findings")
	students := flag.Bool("students", false, "print per-student records")
	flag.Parse()

	if *hierarchy {
		fmt.Print(study.Table1())
		return
	}
	// Ground-truth regeneration dominates startup; report its wall time so
	// explorer regressions are visible from the CLI.
	bankStart := time.Now()
	if _, err := study.BuildBank(); err != nil {
		fmt.Fprintln(os.Stderr, "study:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "study: question bank regenerated in %v\n", time.Since(bankStart).Round(time.Millisecond))
	res, err := study.Run(study.Config{Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "study:", err)
		os.Exit(1)
	}
	if *showQuestions {
		fmt.Print(res.QuestionReport())
		return
	}
	if *surveys {
		fmt.Print(res.SurveyReport())
		return
	}
	fmt.Print(study.Table1())
	fmt.Println()
	fmt.Print(res.Table2())
	fmt.Println()
	fmt.Print(res.Table3())
	fmt.Println()
	fmt.Print(res.ItemAnalysis())
	fmt.Println()
	fmt.Print(res.SurveyReport())
	fmt.Println()
	rng := rand.New(rand.NewSource(*seed))
	fmt.Print(study.CourseSurveyReport(study.SimulateCourseSurveys(rng, study.GenerateCohort(rng, study.CohortConfig{}))))
	if *students {
		fmt.Println()
		for _, r := range res.Students {
			fmt.Printf("student %2d group %s: SM %6.2f MP %6.2f (session1 %6.2f, session2 %6.2f) misconceptions %d\n",
				r.ID, r.Group, r.SMScore, r.MPScore, r.Session1Score, r.Session2Score, len(r.Has))
		}
	}
}
