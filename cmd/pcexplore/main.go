// Command pcexplore enumerates the complete execution space of a
// concurrency-pseudocode program at atomic-statement granularity: all
// possible outputs (the "possibility 1 / possibility 2" sets of the paper's
// Figures 3 and 5), plus any deadlocked configurations.
//
// Usage:
//
//	pcexplore [-max-states N] [-sync-send] [-fifo] [-coarse-lock]
//	          [-por] [-workers N] [-stats] file.pc
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/pseudocode"
)

func main() {
	maxStates := flag.Int("max-states", 0, "state bound (0 = default)")
	por := flag.Bool("por", false, "enable sleep-set partial-order reduction (same results, fewer transitions)")
	workers := flag.Int("workers", 1, "parallel exploration goroutines (>1 disables -livelock/-witness)")
	stats := flag.Bool("stats", false, "report exploration throughput, memory, and POR savings")
	syncSend := flag.Bool("sync-send", false, "misconception semantics [C1]M3: sends block until received")
	fifo := flag.Bool("fifo", false, "misconception semantics [I2]M5: FIFO mailboxes")
	coarse := flag.Bool("coarse-lock", false, "misconception semantics [I1]S7: lock held across whole functions")
	waitKeeps := flag.Bool("wait-keeps-lock", false, "misconception semantics: WAIT() does not release the access")
	notifyOne := flag.Bool("notify-one", false, "ablation: NOTIFY wakes one waiter instead of all")
	livelock := flag.Bool("livelock", false, "also check liveness (tracks the state graph; costs memory)")
	witness := flag.Bool("witness", false, "on deadlock, print a concrete schedule that reproduces it")
	jsonOut := flag.Bool("json", false, "emit the raw exploration result as JSON")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pcexplore [flags] file.pc")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcexplore:", err)
		os.Exit(1)
	}
	sem := pseudocode.Semantics{
		SendSynchronous: *syncSend,
		FIFOMailboxes:   *fifo,
		CoarseLock:      *coarse,
		WaitKeepsLock:   *waitKeeps,
		NotifyWakesOne:  *notifyOne,
	}
	prog, err := pseudocode.CompileSource(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcexplore:", err)
		os.Exit(1)
	}
	opts := pseudocode.ExploreOpts{
		MaxStates:    *maxStates,
		TrackGraph:   *livelock,
		TrackWitness: *witness,
		POR:          *por,
		Workers:      *workers,
		Sem:          sem,
	}
	start := time.Now()
	res, err := pseudocode.Explore(prog, opts)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcexplore:", err)
		os.Exit(1)
	}
	if *stats {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		fmt.Printf("explored %d distinct states, %d transitions in %v (%.0f states/sec, peak heap %.1f MB)\n",
			res.StatesVisited, res.Transitions, elapsed.Round(time.Microsecond),
			float64(res.StatesVisited)/elapsed.Seconds(), float64(ms.HeapAlloc)/(1<<20))
		if *por {
			// POR savings are relative to the unreduced transition count, so
			// -stats -por pays for one extra unreduced run to report it.
			unreduced := opts
			unreduced.POR = false
			if ur, err := pseudocode.Explore(prog, unreduced); err == nil && ur.Transitions > 0 {
				saved := ur.Transitions - res.Transitions
				fmt.Printf("POR: %d transitions vs %d unreduced (%.1f%% saved)\n",
					res.Transitions, ur.Transitions, 100*float64(saved)/float64(ur.Transitions))
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "pcexplore:", err)
			os.Exit(1)
		}
		if res.Deadlocks > 0 {
			os.Exit(3)
		}
		return
	}
	fmt.Printf("states visited: %d\n", res.StatesVisited)
	if res.Truncated {
		fmt.Println("WARNING: exploration truncated; results are a lower bound")
	}
	fmt.Printf("distinct outputs (%d):\n", len(res.Outputs))
	for i, o := range res.Outputs {
		fmt.Printf("  possibility %d: %q\n", i+1, o)
	}
	if res.Deadlocks > 0 {
		fmt.Printf("DEADLOCKS: %d distinct deadlocked states\n", res.Deadlocks)
		for _, term := range res.Terminals {
			if term.Kind == pseudocode.Deadlocked {
				fmt.Printf("  blocked: %v after output %q\n", term.Blocked, term.Output)
			}
		}
		if *witness && len(res.DeadlockWitness) > 0 {
			fmt.Println("witness schedule (replayed):")
			events, _, err := pseudocode.ReplayWitness(prog, sem, res.DeadlockWitness)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pcexplore: replay failed:", err)
				os.Exit(1)
			}
			for _, ev := range events {
				fmt.Printf("  [%s] %s line %d %s\n", ev.TaskName, ev.Op, ev.Line, ev.Detail)
			}
		}
		os.Exit(3)
	}
	fmt.Println("no deadlocks")
	if *livelock {
		if res.LivelockFree {
			fmt.Println("livelock-free: every state can reach a terminal")
		} else {
			fmt.Printf("LIVELOCK: %d states cannot reach any terminal\n", res.DivergentStates)
			os.Exit(4)
		}
	}
}
