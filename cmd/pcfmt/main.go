// Command pcfmt formats concurrency-pseudocode source to the canonical
// style (gofmt for .pc files).
//
// Usage:
//
//	pcfmt file.pc            # print formatted source to stdout
//	pcfmt -w file.pc ...     # rewrite files in place
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/pseudocode"
)

func main() {
	write := flag.Bool("w", false, "write result back to the source file")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: pcfmt [-w] file.pc ...")
		os.Exit(2)
	}
	exit := 0
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcfmt:", err)
			exit = 1
			continue
		}
		out, err := pseudocode.FormatSource(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcfmt:", err)
			exit = 1
			continue
		}
		if *write {
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "pcfmt:", err)
				exit = 1
			}
		} else {
			fmt.Print(out)
		}
	}
	os.Exit(exit)
}
