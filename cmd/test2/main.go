// Command test2 reproduces the paper's Test 2: "implement the single-lane
// bridge problem with [all three models] ... this test provides information
// on the costs and benefits of implementing the same problem in three
// forms." For every problem (not just the bridge) it reports the
// ease-of-programming side (lines, branches, synchronization operations,
// spawns, from the Go AST of this repository's implementations) next to
// the performance side (median wall time).
//
// Usage (from the repository root):
//
//	go run ./cmd/test2 [-root .] [-problem singlelanebridge] [-reps 3]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/complexity"
	"repro/internal/core"
	"repro/internal/metrics"
	_ "repro/internal/problems/registry"
)

func main() {
	root := flag.String("root", ".", "repository root (contains internal/problems)")
	only := flag.String("problem", "", "restrict to one problem")
	reps := flag.Int("reps", 3, "timing repetitions (median reported)")
	flag.Parse()

	reports, err := complexity.AnalyzeAllProblems(filepath.Join(*root, "internal", "problems"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "test2:", err)
		os.Exit(1)
	}

	t := metrics.NewTable("TEST 2 (reproduced): costs and benefits of the same problem in three forms",
		"Problem", "Model", "Lines", "Branches", "SyncOps", "Spawns", "Median time")
	for _, rep := range reports {
		if *only != "" && rep.Problem != *only {
			continue
		}
		spec, err := core.Default.Get(rep.Problem)
		if err != nil {
			fmt.Fprintln(os.Stderr, "test2:", err)
			os.Exit(1)
		}
		for _, m := range core.AllModels {
			cm := rep.PerModel[m]
			durs := make([]float64, 0, *reps)
			for r := 0; r < *reps; r++ {
				start := time.Now()
				if _, err := spec.Run(m, nil, int64(r)); err != nil {
					fmt.Fprintf(os.Stderr, "test2: %s/%s: %v\n", rep.Problem, m, err)
					os.Exit(1)
				}
				durs = append(durs, float64(time.Since(start)))
			}
			med, _ := metrics.Median(durs)
			t.AddRow(rep.Problem, m.String(),
				metrics.I(cm.Lines), metrics.I(cm.Branches),
				metrics.I(cm.SyncCalls), metrics.I(cm.Spawns),
				time.Duration(med).Round(time.Microsecond).String())
		}
	}
	fmt.Print(t)
	fmt.Println()
	fmt.Println("Reading: Lines/Branches/SyncOps/Spawns come from this repository's Go")
	fmt.Println("implementations (program-text cost, the paper's 'ease of programming');")
	fmt.Println("Median time is the runtime cost at each problem's default size.")
}
