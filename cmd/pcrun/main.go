// Command pcrun executes a concurrency-pseudocode program (the paper's
// Figures 1-5 notation) once, under a seeded random scheduler.
//
// Usage:
//
//	pcrun [-seed N] [-trace] [-metrics] [-max-steps N] [-sync-send] [-fifo] [-coarse-lock] file.pc
//
// Different seeds explore different interleavings; use pcexplore to
// enumerate all of them. -metrics counts the run's atomic steps per
// operation and per task and dumps them as Prometheus text after the run —
// the step-count profile of one interleaving.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/metrics"
	"repro/internal/pseudocode"
)

func main() {
	seed := flag.Int64("seed", 1, "scheduler seed (same seed, same interleaving)")
	traceFlag := flag.Bool("trace", false, "print every atomic step")
	metricsFlag := flag.Bool("metrics", false, "dump per-op and per-task step counts after the run (Prometheus text)")
	diagram := flag.Bool("diagram", false, "print a Mermaid sequence diagram of the run")
	maxSteps := flag.Int("max-steps", 0, "step bound (0 = default)")
	syncSend := flag.Bool("sync-send", false, "misconception semantics [C1]M3: sends block until received")
	fifo := flag.Bool("fifo", false, "misconception semantics [I2]M5: FIFO mailboxes")
	coarse := flag.Bool("coarse-lock", false, "misconception semantics [I1]S7: lock held across whole functions")
	waitKeeps := flag.Bool("wait-keeps-lock", false, "misconception semantics: WAIT() does not release the access")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pcrun [flags] file.pc")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcrun:", err)
		os.Exit(1)
	}
	opts := pseudocode.RunOpts{
		Seed:     *seed,
		MaxSteps: *maxSteps,
		Sem: pseudocode.Semantics{
			SendSynchronous: *syncSend,
			FIFOMailboxes:   *fifo,
			CoarseLock:      *coarse,
			WaitKeepsLock:   *waitKeeps,
		},
	}
	var events []pseudocode.StepEvent
	var reg *metrics.Registry
	if *metricsFlag {
		reg = metrics.NewRegistry()
	}
	if *traceFlag || *diagram || reg != nil {
		opts.Trace = func(ev pseudocode.StepEvent) {
			if *traceFlag {
				fmt.Fprintf(os.Stderr, "[%s] %s line %d %s\n", ev.TaskName, ev.Op, ev.Line, ev.Detail)
			}
			if reg != nil {
				reg.Counter("pc.steps").Inc()
				reg.Counter("pc.op." + ev.Op).Inc()
				reg.Counter("pc.task." + ev.TaskName + ".steps").Inc()
			}
			if *traceFlag || *diagram {
				events = append(events, ev)
			}
		}
	}
	res, err := pseudocode.RunSource(string(src), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcrun:", err)
		os.Exit(1)
	}
	fmt.Print(res.Output)
	if *diagram {
		fmt.Println(pseudocode.TraceDiagram(events))
	}
	if reg != nil {
		fmt.Println("# post-run metrics (Prometheus text format)")
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "pcrun: metrics dump:", err)
		}
	}
	fmt.Fprintf(os.Stderr, "-- %s after %d steps\n", res.Kind, res.Steps)
	if len(res.Blocked) > 0 {
		fmt.Fprintf(os.Stderr, "-- blocked tasks: %v\n", res.Blocked)
		os.Exit(3)
	}
}
