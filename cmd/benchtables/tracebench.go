package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/actors"
	"repro/internal/metrics"
	"repro/internal/remote"
	"repro/internal/trace"
)

// traceTable measures what distributed tracing costs the two hot paths it
// instruments: the local Tell flood (origination + mailbox/handler marks)
// and the remote ping-pong (span serialization riding the v5 envelope).
// Rows are untraced, the default 1-in-64 sampling, and every-message
// tracing; overhead is relative to the untraced row. The default-sampling
// rows are the ones the CI trace-smoke bound enforces (≤1.5x on the Tell
// path, same aggregation as TestTraceOverheadSmoke).
func traceTable(reps, scale int) []benchEntry {
	t := metrics.NewTable("DISTRIBUTED TRACING OVERHEAD: traced vs untraced (docs/OBSERVABILITY.md)",
		"Case", "value", "overhead")
	var entries []benchEntry

	// Local flood: same interleaved best-of aggregation as obsTable — the
	// overhead is a ratio, so every case must see the same machine drift.
	floodN := 200000 / scale
	floodCases := []struct {
		name   string
		sample int // 0 = untraced
	}{
		{"tell flood, untraced (baseline)", 0},
		{"tell flood, traced 1/64 (default)", 64},
		{"tell flood, traced every message", 1},
	}
	floodCfg := func(sample int) actors.Config {
		if sample == 0 {
			return actors.Config{}
		}
		return actors.Config{Tracer: trace.NewTracer(sample, 0)}
	}
	best := make([]float64, len(floodCases))
	for r := 0; r < reps+1; r++ {
		for i, c := range floodCases {
			start := time.Now()
			if err := tellFloodOnce(floodCfg(c.sample), 8, floodN); err != nil {
				fmt.Fprintf(os.Stderr, "benchtables: %s: %v\n", c.name, err)
				os.Exit(1)
			}
			d := float64(time.Since(start))
			if r == 0 {
				continue // warmup round
			}
			if best[i] == 0 || d < best[i] {
				best[i] = d
			}
		}
	}
	var base float64
	for i, c := range floodCases {
		rate := float64(floodN) / (best[i] / 1e9)
		overhead := "-"
		if i == 0 {
			base = rate
		} else if base > 0 {
			pct := (base - rate) / base * 100
			overhead = fmt.Sprintf("%+.1f%%", pct)
			entries = append(entries, benchEntry{Name: c.name, Metric: "overhead_pct", Value: pct})
		}
		t.AddRow(c.name, fmt.Sprintf("%.2fM msgs/sec", rate/1e6), overhead)
		entries = append(entries, benchEntry{Name: c.name, Metric: "msgs/sec", Value: rate})
	}

	// Remote ping-pong over the in-process transport: both nodes traced, so
	// sampled requests originate at the near node, migrate across the v5
	// wire, and finish at the echo handler — the full serialization cost.
	pingN := 4000 / scale
	pingCases := []struct {
		name   string
		sample int
	}{
		{"remote ping-pong, untraced (baseline)", 0},
		{"remote ping-pong, traced 1/64 (default)", 64},
		{"remote ping-pong, traced every message", 1},
	}
	pingBest := make([]float64, len(pingCases))
	for r := 0; r < reps+1; r++ {
		for i, c := range pingCases {
			d, err := tracedPingPongOnce(c.sample, pingN)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchtables: %s: %v\n", c.name, err)
				os.Exit(1)
			}
			if r == 0 {
				continue
			}
			if pingBest[i] == 0 || d < pingBest[i] {
				pingBest[i] = d
			}
		}
	}
	var pingBase float64
	for i, c := range pingCases {
		perOp := pingBest[i] / float64(pingN)
		overhead := "-"
		if i == 0 {
			pingBase = perOp
		} else if pingBase > 0 {
			pct := (perOp - pingBase) / pingBase * 100
			overhead = fmt.Sprintf("%+.1f%%", pct)
			entries = append(entries, benchEntry{Name: c.name, Metric: "overhead_pct", Value: pct})
		}
		t.AddRow(c.name, fmt.Sprintf("%.1f µs/op", perOp/1e3), overhead)
		entries = append(entries, benchEntry{Name: c.name, Metric: "ns/op", Value: perOp})
	}

	fmt.Print(t)
	return entries
}

// tracedPingPongOnce times n Ask round trips between two fresh mem-transport
// nodes whose systems both trace 1 in sample sends (0 = untraced).
func tracedPingPongOnce(sample, n int) (float64, error) {
	net := remote.NewMemNetwork()
	mkSys := func(addr string) *actors.System {
		if sample == 0 {
			return nil // node owns a default untraced system
		}
		tr := trace.NewTracer(sample, 0)
		tr.SetNode(addr)
		return actors.NewSystem(actors.Config{Tracer: tr})
	}
	na, err := remote.NewNode(remote.Config{
		ListenAddr: "trace-near", Transport: net.Endpoint("trace-near"), System: mkSys("trace-near"),
	})
	if err != nil {
		return 0, err
	}
	defer na.Close()
	nb, err := remote.NewNode(remote.Config{
		ListenAddr: "trace-far", Transport: net.Endpoint("trace-far"), System: mkSys("trace-far"),
	})
	if err != nil {
		return 0, err
	}
	defer nb.Close()
	echo := nb.System().MustSpawn("echo", func(ctx *actors.Context, msg any) {
		if p, ok := msg.(benchPing); ok {
			ctx.Reply(benchPong{N: p.N})
		}
	})
	nb.Register("echo", echo)
	ref, err := na.RefFor("echo@" + nb.Addr())
	if err == nil {
		err = na.Connect(nb.Addr(), 5*time.Second)
	}
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := actors.Ask(na.System(), ref, benchPing{N: i}, 30*time.Second); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start)), nil
}

// writeTraceBaseline persists the tracing-overhead entries as the committed
// regression baseline (BENCH_trace.json).
func writeTraceBaseline(path string, scale int, entries []benchEntry) error {
	doc := struct {
		Note    string       `json:"note"`
		Command string       `json:"command"`
		Scale   int          `json:"scale"`
		Entries []benchEntry `json:"entries"`
	}{
		Note: "Distributed-tracing overhead baseline. Machine-dependent: compare " +
			"the overhead_pct entries (traced vs untraced Tell flood and remote " +
			"ping-pong), not absolute rates. The 1/64-sampled rows are the " +
			"default configuration and the ones CI bounds.",
		Command: "go run ./cmd/benchtables -json-trace BENCH_trace.json",
		Scale:   scale,
		Entries: entries,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
