package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/actors"
	"repro/internal/metrics"
	"repro/internal/remote"
)

// overloadRun drives one offered-load level against a credit-limited node
// pair: a sink that needs roughly `service` per message, a paced flood
// offering `mult`× the sink's *measured* capacity, and a concurrent asker
// probing end-to-end latency. The capacity is calibrated inline (an
// unpaced burst, timed at the sink) because a sleeping actor's effective
// service time is kernel- and load-dependent — pacing against the nominal
// figure would turn "1×" into a silent overload on a machine with coarse
// sleep granularity. Returns the achieved delivery rate, the ask p99, and
// how many messages the overload machinery shed into the DLOverloaded
// ledger during the paced phase.
func overloadRun(mult int, runFor time.Duration, service time.Duration) (rate float64, p99 time.Duration, shed int64, err error) {
	net := remote.NewMemNetwork()
	mk := func(addr string) (*remote.Node, error) {
		return remote.NewNode(remote.Config{
			ListenAddr: addr, Transport: net.Endpoint(addr),
			HeartbeatInterval: 5 * time.Millisecond,
			HeartbeatTimeout:  500 * time.Millisecond,
			CreditWindow:      256,
			OutboxCap:         128,
			Seed:              1,
		})
	}
	na, err := mk("load-a")
	if err != nil {
		return 0, 0, 0, err
	}
	defer na.Close()
	nb, err := mk("load-b")
	if err != nil {
		return 0, 0, 0, err
	}
	defer nb.Close()

	var seen atomic.Int64
	sink := nb.System().MustSpawn("sink", func(ctx *actors.Context, msg any) {
		if p, ok := msg.(benchPing); ok {
			seen.Add(1)
			time.Sleep(service)
			if p.N == -1 {
				ctx.Reply(benchPong{N: -1})
			}
		}
	})
	nb.Register("sink", sink)
	ref, err := na.RefFor("sink@load-b")
	if err != nil {
		return 0, 0, 0, err
	}
	if err := na.Connect("load-b", 5*time.Second); err != nil {
		return 0, 0, 0, err
	}

	var offered atomic.Int64
	curShed := func() int64 {
		return na.System().DeadLettersOf(actors.DLOverloaded) +
			nb.System().DeadLettersOf(actors.DLOverloaded)
	}
	settle := func(phase string) error {
		deadline := time.Now().Add(30 * time.Second)
		for seen.Load()+curShed() < offered.Load() {
			if time.Now().After(deadline) {
				return fmt.Errorf("overload %dx %s never drained: offered=%d seen=%d shed=%d",
					mult, phase, offered.Load(), seen.Load(), curShed())
			}
			time.Sleep(time.Millisecond)
		}
		return nil
	}

	// Calibration: an unpaced burst, timed at the sink.
	const calib = 500
	calStart := time.Now()
	for i := 0; i < calib; i++ {
		ref.Tell(benchPing{N: i})
		offered.Add(1)
	}
	if err := settle("calibration"); err != nil {
		return 0, 0, 0, err
	}
	capacity := float64(seen.Load()) / time.Since(calStart).Seconds()
	pace := time.Duration(float64(time.Second) / (capacity * float64(mult)))

	askStop := make(chan struct{})
	askDone := make(chan struct{})
	var durations []time.Duration
	go func() {
		defer close(askDone)
		for {
			select {
			case <-askStop:
				return
			// Sparse probes: frequent enough for a p99, rare enough not to
			// be a meaningful fraction of the offered load.
			case <-time.After(20 * time.Millisecond):
			}
			s := time.Now()
			offered.Add(1)
			_, _ = actors.Ask(na.System(), ref, benchPing{N: -1}, 250*time.Millisecond)
			durations = append(durations, time.Since(s))
		}
	}()

	seen0, shed0 := seen.Load(), curShed()
	count := int(capacity * runFor.Seconds() * float64(mult))
	if count < 100 {
		count = 100
	}
	start := time.Now()
	for i := 0; i < count; i++ {
		for time.Since(start) < time.Duration(i)*pace {
			time.Sleep(10 * time.Microsecond)
		}
		ref.Tell(benchPing{N: i})
		offered.Add(1)
	}
	close(askStop)
	<-askDone
	// Drain: every offered message must land as delivered or shed before
	// the rate is meaningful.
	if err := settle("flood"); err != nil {
		return 0, 0, 0, err
	}
	rate = float64(seen.Load()-seen0) / time.Since(start).Seconds()
	shed = curShed() - shed0
	if len(durations) > 0 {
		sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
		p99 = durations[len(durations)*99/100]
	}
	return rate, p99, shed, nil
}

// overloadTable prints the overload-protection numbers — achieved
// throughput, ask p99, and shed volume at 1×, 4×, and 16× the sink's
// service rate — and returns them for the -json-overload baseline
// (BENCH_overload.json). The story the table tells: past saturation the
// achieved rate stays pinned near capacity and the excess is shed at the
// sender's outbox, while ask latency stays bounded instead of growing with
// the queue.
func overloadTable(reps, scale int) []benchEntry {
	t := metrics.NewTable("OVERLOAD PROTECTION: credit-limited flood vs offered load (docs/REMOTE.md)",
		"Offered load", "achieved", "ask p99", "shed")
	var entries []benchEntry
	const service = 50 * time.Microsecond // nominal; capacity is calibrated per run
	runFor := time.Duration(2000/scale) * time.Millisecond

	for _, mult := range []int{1, 4, 16} {
		var rate float64
		var p99 time.Duration
		var shed int64
		_, err := timeMedian(reps, func() error {
			r, p, s, err := overloadRun(mult, runFor, service)
			rate, p99, shed = r, p, s
			return err
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: overload %dx: %v\n", mult, err)
			os.Exit(1)
		}
		name := fmt.Sprintf("%dx service rate", mult)
		t.AddRow(name,
			fmt.Sprintf("%.2fk msgs/sec", rate/1e3),
			fmt.Sprintf("%.1f ms", float64(p99.Microseconds())/1e3),
			fmt.Sprintf("%d msgs", shed))
		entries = append(entries,
			benchEntry{Name: name, Metric: "msgs/sec", Value: rate},
			benchEntry{Name: name, Metric: "ask p99 ms", Value: float64(p99.Microseconds()) / 1e3},
			benchEntry{Name: name, Metric: "shed msgs", Value: float64(shed)})
	}

	fmt.Print(t)
	return entries
}

// writeOverloadBaseline persists the overload-protection entries as the
// committed regression baseline (BENCH_overload.json).
func writeOverloadBaseline(path string, scale int, entries []benchEntry) error {
	doc := struct {
		Note    string       `json:"note"`
		Command string       `json:"command"`
		Scale   int          `json:"scale"`
		Entries []benchEntry `json:"entries"`
	}{
		Note: "Overload-protection baseline: achieved throughput, ask p99, and " +
			"shed volume at 1x/4x/16x the sink's measured capacity under " +
			"credit-based flow control (CreditWindow 256, OutboxCap 128, sink " +
			"service time calibrated per run). Machine-dependent: compare shapes " +
			"(achieved pinned near capacity past saturation, bounded p99), not " +
			"absolute rates.",
		Command: "go run ./cmd/benchtables -overload -json-overload BENCH_overload.json",
		Scale:   scale,
		Entries: entries,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
