package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/metrics"
	"repro/internal/pseudocode"
	"repro/internal/study"
)

// Committed seed-explorer throughput (states/sec), measured on the baseline
// machine with the pre-rewrite explorer (string-keyed visited set, per-frame
// allocation, no POR, sequential only). The speedup column compares the
// current explorer against these on the same programs; on a different
// machine the ratio drifts but stays the meaningful number — the absolute
// rates in BENCH_explore.json do not transfer.
var exploreSeedRates = map[string]float64{
	"bridge_shared":          51666,
	"bridge_message":         20794,
	"philosophers_symmetric": 60038,
}

// exploreSeedStudySecs is the seed wall time of `study -show-questions`
// ground-truth regeneration on the baseline machine.
const exploreSeedStudySecs = 14.86

// exploreCase is one row of the explorer throughput table.
type exploreCase struct {
	program string
	semName string
	sem     pseudocode.Semantics
}

func exploreCases(quick bool) []exploreCase {
	cases := []exploreCase{
		{"bridge_shared", "true", pseudocode.Semantics{}},
		{"bridge_shared", "coarse-lock", pseudocode.Semantics{CoarseLock: true}},
		{"bridge_shared", "wait-keeps-lock", pseudocode.Semantics{WaitKeepsLock: true}},
		{"philosophers_symmetric", "true", pseudocode.Semantics{}},
		{"philosophers_asymmetric", "true", pseudocode.Semantics{}},
		{"fig3c_interleave", "true", pseudocode.Semantics{}},
		{"fig5_messages", "true", pseudocode.Semantics{}},
		{"fig5_messages", "fifo", pseudocode.Semantics{FIFOMailboxes: true}},
		{"quiz_boundedbuffer", "true", pseudocode.Semantics{}},
	}
	if !quick {
		// The message bridge is the big one (~110k states under bag
		// delivery); the CI smoke skips it to stay inside its budget.
		cases = append(cases,
			exploreCase{"bridge_message", "true", pseudocode.Semantics{}},
			exploreCase{"bridge_message", "sync-send", pseudocode.Semantics{SendSynchronous: true}},
			exploreCase{"bridge_message", "fifo", pseudocode.Semantics{FIFOMailboxes: true}},
		)
	}
	return cases
}

// exploreBest runs one exploration config reps times and returns the result
// with the best (fastest) wall time — the aggregation the other tables use:
// on a shared machine, interruptions only ever add time.
func exploreBest(prog *pseudocode.Compiled, opts pseudocode.ExploreOpts, reps int) (*pseudocode.ExploreResult, time.Duration, error) {
	var bestRes *pseudocode.ExploreResult
	var best time.Duration
	for r := 0; r < reps; r++ {
		start := time.Now()
		res, err := pseudocode.Explore(prog, opts)
		el := time.Since(start)
		if err != nil {
			return nil, 0, err
		}
		if r == 0 || el < best {
			best, bestRes = el, res
		}
	}
	return bestRes, best, nil
}

// exploreTable measures explorer throughput over the embedded corpus:
// distinct states, transitions with and without partial-order reduction,
// sequential and 8-worker states/sec, and the speedup against the committed
// seed-explorer rates where a seed measurement exists. It ends with the
// study's ground-truth regeneration wall time (the end-to-end consumer of
// explorer speed).
func exploreTable(reps, scale int) []benchEntry {
	t := metrics.NewTable("EXPLORER THROUGHPUT: full state-space search (docs/PERF.md)",
		"Program", "Semantics", "states", "trans", "trans POR", "st/s", "st/s 8w", "vs seed")
	var entries []benchEntry
	progs := pseudocode.CorpusPrograms()
	quick := scale > 1

	for _, c := range exploreCases(quick) {
		prog, err := pseudocode.CompileSource(progs[c.program])
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: compile %s: %v\n", c.program, err)
			os.Exit(1)
		}
		base, baseEl, err := exploreBest(prog, pseudocode.ExploreOpts{Sem: c.sem}, reps)
		if err == nil && base.Truncated {
			err = fmt.Errorf("exploration truncated")
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: explore %s/%s: %v\n", c.program, c.semName, err)
			os.Exit(1)
		}
		por, _, err := exploreBest(prog, pseudocode.ExploreOpts{Sem: c.sem, POR: true}, reps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: explore %s/%s POR: %v\n", c.program, c.semName, err)
			os.Exit(1)
		}
		_, parEl, err := exploreBest(prog, pseudocode.ExploreOpts{Sem: c.sem, Workers: 8}, reps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: explore %s/%s workers: %v\n", c.program, c.semName, err)
			os.Exit(1)
		}
		seqRate := float64(base.StatesVisited) / baseEl.Seconds()
		parRate := float64(base.StatesVisited) / parEl.Seconds()
		vsSeed := "-"
		if seed, ok := exploreSeedRates[c.program]; ok && c.semName == "true" {
			vsSeed = fmt.Sprintf("%.1fx", seqRate/seed)
			entries = append(entries, benchEntry{Name: c.program + " speedup vs seed", Metric: "ratio", Value: seqRate / seed})
		}
		t.AddRow(c.program, c.semName,
			fmt.Sprintf("%d", base.StatesVisited),
			fmt.Sprintf("%d", base.Transitions),
			fmt.Sprintf("%d", por.Transitions),
			fmt.Sprintf("%.0f", seqRate),
			fmt.Sprintf("%.0f", parRate),
			vsSeed)
		key := c.program + "/" + c.semName
		entries = append(entries,
			benchEntry{Name: key, Metric: "states", Value: float64(base.StatesVisited)},
			benchEntry{Name: key, Metric: "transitions", Value: float64(base.Transitions)},
			benchEntry{Name: key, Metric: "transitions POR", Value: float64(por.Transitions)},
			benchEntry{Name: key, Metric: "states/sec", Value: seqRate},
			benchEntry{Name: key, Metric: "states/sec 8 workers", Value: parRate})
	}
	fmt.Print(t.String())

	// End-to-end consumer: regenerate the study's ground-truth bank (POR +
	// workers in production config). BuildBank caches, so time the uncached
	// internals via a fresh run of both section explorations.
	bankStart := time.Now()
	if _, err := study.BuildBank(); err != nil {
		fmt.Fprintf(os.Stderr, "benchtables: study bank: %v\n", err)
		os.Exit(1)
	}
	bankSecs := time.Since(bankStart).Seconds()
	fmt.Printf("\nstudy ground-truth bank regenerated in %.2fs (seed explorer: %.1fs, %.1fx)\n",
		bankSecs, exploreSeedStudySecs, exploreSeedStudySecs/bankSecs)
	entries = append(entries,
		benchEntry{Name: "study bank regeneration", Metric: "seconds", Value: bankSecs},
		benchEntry{Name: "study bank speedup vs seed", Metric: "ratio", Value: exploreSeedStudySecs / bankSecs})
	return entries
}

func writeExploreBaseline(path string, scale int, entries []benchEntry) error {
	doc := struct {
		Note    string       `json:"note"`
		Command string       `json:"command"`
		Scale   int          `json:"scale"`
		Entries []benchEntry `json:"entries"`
	}{
		Note: "Explorer throughput baseline: fingerprinted visited set, arena " +
			"frames, free-list recycling, sleep-set POR, parallel search. " +
			"Machine-dependent: compare the 'speedup vs seed' ratio entries " +
			"(seed = pre-rewrite explorer on the same machine), not absolute " +
			"states/sec. States and transition counts are exact and must not " +
			"drift; 'transitions POR' may differ across machines only if the " +
			"program set changes.",
		Command: "go run ./cmd/benchtables -explore -json-explore BENCH_explore.json",
		Scale:   scale,
		Entries: entries,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
