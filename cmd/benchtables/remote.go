package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/actors"
	"repro/internal/metrics"
	"repro/internal/remote"
)

// Wire payloads for the remote benchmarks (gob needs exported fields).
type benchPing struct{ N int }
type benchPong struct{ N int }

func init() {
	remote.RegisterType(benchPing{})
	remote.RegisterType(benchPong{})
}

// remotePair builds two connected nodes with an echo actor on the far one.
func remotePair(mem bool) (near *remote.Node, echoRef *actors.Ref, cleanup func(), err error) {
	var ta, tb remote.Transport
	addrA, addrB := "127.0.0.1:0", "127.0.0.1:0"
	if mem {
		net := remote.NewMemNetwork()
		addrA, addrB = "bench-near", "bench-far"
		ta, tb = net.Endpoint(addrA), net.Endpoint(addrB)
	} else {
		ta, tb = remote.TCPTransport{}, remote.TCPTransport{}
	}
	na, err := remote.NewNode(remote.Config{ListenAddr: addrA, Transport: ta})
	if err != nil {
		return nil, nil, nil, err
	}
	nb, err := remote.NewNode(remote.Config{ListenAddr: addrB, Transport: tb})
	if err != nil {
		na.Close()
		return nil, nil, nil, err
	}
	echo := nb.System().MustSpawn("echo", func(ctx *actors.Context, msg any) {
		if p, ok := msg.(benchPing); ok {
			ctx.Reply(benchPong{N: p.N})
		}
	})
	nb.Register("echo", echo)
	ref, err := na.RefFor("echo@" + nb.Addr())
	if err == nil {
		err = na.Connect(nb.Addr(), 5*time.Second)
	}
	if err != nil {
		na.Close()
		nb.Close()
		return nil, nil, nil, err
	}
	return na, ref, func() { na.Close(); nb.Close() }, nil
}

// remoteTable prints node-to-node wire numbers (the distribution layer's
// half of the performance story; see docs/REMOTE.md) and returns them for
// the -json-remote baseline (BENCH_remote.json).
func remoteTable(reps, scale int) []benchEntry {
	t := metrics.NewTable("REMOTE ACTORS: node-to-node wire (docs/REMOTE.md)",
		"Case", "value")
	var entries []benchEntry

	pingPong := func(name string, mem bool, n int) {
		var perOp float64
		_, err := timeMedian(reps, func() error {
			na, ref, cleanup, err := remotePair(mem)
			if err != nil {
				return err
			}
			defer cleanup()
			start := time.Now()
			for i := 0; i < n; i++ {
				if _, err := actors.Ask(na.System(), ref, benchPing{N: i}, 30*time.Second); err != nil {
					return fmt.Errorf("iter %d: %w", i, err)
				}
			}
			perOp = float64(time.Since(start).Nanoseconds()) / float64(n)
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %s: %v\n", name, err)
			os.Exit(1)
		}
		t.AddRow(name, fmt.Sprintf("%.0f ns/round-trip", perOp))
		entries = append(entries, benchEntry{Name: name, Metric: "ns/round-trip", Value: perOp})
	}

	n := 2000 / scale
	pingPong("remote ping-pong (mem transport)", true, n)
	pingPong("remote ping-pong (loopback tcp)", false, n)

	throughput := func(name string, mem bool, n int) {
		var rate float64
		_, err := timeMedian(reps, func() error {
			var ta, tb remote.Transport
			addrA, addrB := "127.0.0.1:0", "127.0.0.1:0"
			if mem {
				net := remote.NewMemNetwork()
				addrA, addrB = "tp-near", "tp-far"
				ta, tb = net.Endpoint(addrA), net.Endpoint(addrB)
			} else {
				ta, tb = remote.TCPTransport{}, remote.TCPTransport{}
			}
			na, err := remote.NewNode(remote.Config{ListenAddr: addrA, Transport: ta, OutboxCap: n + 16})
			if err != nil {
				return err
			}
			defer na.Close()
			nb, err := remote.NewNode(remote.Config{ListenAddr: addrB, Transport: tb})
			if err != nil {
				return err
			}
			defer nb.Close()
			var got atomic.Int64
			done := make(chan struct{})
			sink := nb.System().MustSpawn("sink", func(ctx *actors.Context, msg any) {
				if got.Add(1) == int64(n) {
					close(done)
				}
			})
			nb.Register("sink", sink)
			ref, err := na.RefFor("sink@" + nb.Addr())
			if err != nil {
				return err
			}
			if err := na.Connect(nb.Addr(), 5*time.Second); err != nil {
				return err
			}
			start := time.Now()
			for i := 0; i < n; i++ {
				ref.Tell(benchPing{N: i})
			}
			select {
			case <-done:
			case <-time.After(60 * time.Second):
				return fmt.Errorf("only %d/%d frames arrived", got.Load(), n)
			}
			rate = float64(n) / time.Since(start).Seconds()
			// The outbox is sized to the flood, so nothing deadletters; any
			// loss would show as a hang caught above.
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %s: %v\n", name, err)
			os.Exit(1)
		}
		t.AddRow(name, fmt.Sprintf("%.2fk msgs/sec", rate/1e3))
		entries = append(entries, benchEntry{Name: name, Metric: "msgs/sec", Value: rate})
	}
	tn := 20000 / scale
	throughput("remote tell flood (mem transport)", true, tn)
	throughput("remote tell flood (loopback tcp)", false, tn)

	fmt.Print(t)
	return entries
}

// writeRemoteBaseline persists the remote wire entries as the committed
// regression baseline (BENCH_remote.json).
func writeRemoteBaseline(path string, scale int, entries []benchEntry) error {
	doc := struct {
		Note    string       `json:"note"`
		Command string       `json:"command"`
		Scale   int          `json:"scale"`
		Entries []benchEntry `json:"entries"`
	}{
		Note: "Remote actor wire baseline (default streaming codec, " +
			"length-prefixed frames). Machine-dependent: compare mem vs tcp " +
			"and ping-pong vs flood ratios, not absolutes. The pre-rewrite " +
			"gob-codec flood this replaced is pinned as a constant in " +
			"cmd/benchtables/wire.go.",
		Command: "go run ./cmd/benchtables -remote -json-remote BENCH_remote.json",
		Scale:   scale,
		Entries: entries,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
