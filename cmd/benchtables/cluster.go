package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/cluster/harness"
	"repro/internal/metrics"
)

// clusterTable runs the cluster load harness (internal/cluster/harness) at
// table scale: a 3-node cluster, a modest simulated-client population, one
// node killed after the steady phase. It prints steady-state throughput,
// the ask p99 before and during the rebalance, and the recovery time from
// the kill to the first op on a re-homed grain. The committed full-scale
// baseline (a million clients, BENCH_cluster.json) comes from cmd/loadgen,
// not from here — this table is the smoke-sized view CI can afford.
func clusterTable(reps, scale int) []benchEntry {
	t := metrics.NewTable("CLUSTER SHARDING: presence load vs node kill (docs/CLUSTER.md)",
		"Phase", "throughput", "ask p99", "detail")
	var entries []benchEntry

	cfg := harness.Config{
		Nodes:             3,
		Clients:           int64(60_000 / scale),
		Grains:            256,
		Workers:           32,
		Shards:            32,
		RebalanceOps:      int64(12_000 / scale),
		Kill:              true,
		Seed:              1,
		HeartbeatInterval: 2 * time.Millisecond,
		HeartbeatTimeout:  20 * time.Millisecond,
		SuspectAfter:      60 * time.Millisecond,
	}

	var rep harness.Report
	_, err := timeMedian(reps, func() error {
		r, err := harness.Run(cfg)
		rep = r
		return err
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtables: cluster: %v\n", err)
		os.Exit(1)
	}

	t.AddRow("steady state",
		fmt.Sprintf("%.1fk ops/sec", rep.SteadyRate/1e3),
		fmt.Sprintf("%.2f ms", float64(rep.SteadyP99.Microseconds())/1e3),
		fmt.Sprintf("%d clients on %d grains", rep.Clients, rep.Grains))
	t.AddRow("rebalance (1 node killed)",
		fmt.Sprintf("%.1fk ops/sec", rep.RebalanceRate/1e3),
		fmt.Sprintf("%.2f ms", float64(rep.RebalanceP99.Microseconds())/1e3),
		fmt.Sprintf("%d handoffs, %d parked", rep.Handoffs, rep.Parked))
	t.AddRow("recovery",
		"—",
		"—",
		fmt.Sprintf("%.1f ms to first op on a re-homed grain", float64(rep.RecoveryTime.Microseconds())/1e3))

	entries = append(entries,
		benchEntry{Name: "steady", Metric: "ops/sec", Value: rep.SteadyRate},
		benchEntry{Name: "steady", Metric: "ask p99 ms", Value: float64(rep.SteadyP99.Microseconds()) / 1e3},
		benchEntry{Name: "rebalance", Metric: "ops/sec", Value: rep.RebalanceRate},
		benchEntry{Name: "rebalance", Metric: "ask p99 ms", Value: float64(rep.RebalanceP99.Microseconds()) / 1e3},
		benchEntry{Name: "recovery", Metric: "ms", Value: float64(rep.RecoveryTime.Microseconds()) / 1e3})

	fmt.Print(t)
	return entries
}
