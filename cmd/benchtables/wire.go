package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/actors"
	"repro/internal/metrics"
	"repro/internal/remote"
)

// pr3MemFloodBaseline is the committed mem-transport tell-flood rate from the
// BENCH_remote.json baseline taken before the wire hot-path rewrite
// (self-contained gob codec, per-frame sends, no pooling). The -wire table
// reports the current streaming rate against it so the speedup the rewrite
// bought stays visible as a number, not a changelog anecdote.
const pr3MemFloodBaseline = 28288.85 // msgs/sec

// measureAllocs runs fn n times and returns (ns/op, allocs/op).
func measureAllocs(n int, fn func()) (float64, float64) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < n; i++ {
		fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return float64(elapsed.Nanoseconds()) / float64(n),
		float64(after.Mallocs-before.Mallocs) / float64(n)
}

// wireFlood measures one-way Tell throughput (msgs/sec) between two nodes
// using the given codec on both ends.
func wireFlood(mem bool, mkCodec func() remote.Codec, n int) (float64, error) {
	var ta, tb remote.Transport
	addrA, addrB := "127.0.0.1:0", "127.0.0.1:0"
	if mem {
		net := remote.NewMemNetwork()
		addrA, addrB = "wire-near", "wire-far"
		ta, tb = net.Endpoint(addrA), net.Endpoint(addrB)
	} else {
		ta, tb = remote.TCPTransport{}, remote.TCPTransport{}
	}
	na, err := remote.NewNode(remote.Config{ListenAddr: addrA, Transport: ta, Codec: mkCodec(), OutboxCap: n + 16})
	if err != nil {
		return 0, err
	}
	defer na.Close()
	nb, err := remote.NewNode(remote.Config{ListenAddr: addrB, Transport: tb, Codec: mkCodec()})
	if err != nil {
		return 0, err
	}
	defer nb.Close()
	var got atomic.Int64
	done := make(chan struct{})
	sink := nb.System().MustSpawn("sink", func(ctx *actors.Context, msg any) {
		if got.Add(1) == int64(n) {
			close(done)
		}
	})
	nb.Register("sink", sink)
	ref, err := na.RefFor("sink@" + nb.Addr())
	if err != nil {
		return 0, err
	}
	if err := na.Connect(nb.Addr(), 5*time.Second); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		ref.Tell(benchPing{N: i})
	}
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		return 0, fmt.Errorf("only %d/%d frames arrived", got.Load(), n)
	}
	return float64(n) / time.Since(start).Seconds(), nil
}

// wireTable prints the wire hot-path numbers — codec micro-costs and
// old-vs-new end-to-end floods — and returns them for the -json-wire
// baseline (BENCH_wire.json).
func wireTable(reps, scale int) []benchEntry {
	t := metrics.NewTable("WIRE HOT PATH: streaming codec vs self-contained gob (docs/REMOTE.md)",
		"Case", "value", "allocs/op")
	var entries []benchEntry
	add := func(name, metric string, value, allocs float64, format string) {
		t.AddRow(name, fmt.Sprintf(format, value), fmt.Sprintf("%.1f", allocs))
		entries = append(entries,
			benchEntry{Name: name, Metric: metric, Value: value},
			benchEntry{Name: name, Metric: "allocs/op", Value: allocs})
	}

	env := &remote.WireEnvelope{
		Kind: remote.FrameMsg, To: "sink", FromAddr: "wire-near",
		FromName: "driver", FromID: 7, Seq: 42, Lamport: 99,
		Payload: benchPing{N: 7},
	}
	micro := 200000 / scale

	// Frame encode, old path: one self-contained gob document per frame.
	gobCodec := remote.GobCodec{}
	oldFrame, err := gobCodec.Encode(env)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtables: gob encode: %v\n", err)
		os.Exit(1)
	}
	nsOp, allocs := measureAllocs(micro, func() {
		if _, err := gobCodec.Encode(env); err != nil {
			panic(err)
		}
	})
	add("frame encode, self-contained gob", "ns/op", nsOp, allocs, "%.0f ns/op")
	add("frame size, self-contained gob", "bytes/frame", float64(len(oldFrame)), 0, "%.0f B")

	nsOp, allocs = measureAllocs(micro, func() {
		if _, err := gobCodec.Decode(oldFrame); err != nil {
			panic(err)
		}
	})
	add("frame decode, self-contained gob", "ns/op", nsOp, allocs, "%.0f ns/op")

	// Frame encode, new path: binary header + streaming payload session.
	// Sessions are exercised through a live mem-transport pair below; here
	// the public surface that isolates the codec cost is the envelope codec
	// benchmark hook.
	newNs, newAllocs, newBytes := remote.BenchStreamEncode(micro, env)
	add("frame encode, streaming codec", "ns/op", newNs, newAllocs, "%.0f ns/op")
	add("frame size, streaming codec", "bytes/frame", newBytes, 0, "%.0f B")
	decNs, decAllocs := remote.BenchStreamDecode(micro, env)
	add("frame decode, streaming codec", "ns/op", decNs, decAllocs, "%.0f ns/op")

	// End-to-end floods, old codec vs new, on both transports.
	flood := func(name string, mem bool, mk func() remote.Codec, n int) float64 {
		var rate float64
		_, err := timeMedian(reps, func() error {
			r, err := wireFlood(mem, mk, n)
			rate = r
			return err
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %s: %v\n", name, err)
			os.Exit(1)
		}
		t.AddRow(name, fmt.Sprintf("%.2fk msgs/sec", rate/1e3), "-")
		entries = append(entries, benchEntry{Name: name, Metric: "msgs/sec", Value: rate})
		return rate
	}
	fn := 20000 / scale
	gobMem := flood("tell flood mem, self-contained gob", true, func() remote.Codec { return remote.GobCodec{} }, fn)
	strMem := flood("tell flood mem, streaming codec", true, func() remote.Codec { return remote.NewStreamCodec() }, fn)
	gobTCP := flood("tell flood tcp, self-contained gob", false, func() remote.Codec { return remote.GobCodec{} }, fn)
	strTCP := flood("tell flood tcp, streaming codec", false, func() remote.Codec { return remote.NewStreamCodec() }, fn)

	speedup := func(name string, before, after float64) {
		t.AddRow(name, fmt.Sprintf("%.2fx", after/before), "-")
		entries = append(entries, benchEntry{Name: name, Metric: "speedup", Value: after / before})
	}
	speedup("mem flood speedup (stream vs gob)", gobMem, strMem)
	speedup("tcp flood speedup (stream vs gob)", gobTCP, strTCP)
	speedup("mem flood vs committed pre-rewrite baseline", pr3MemFloodBaseline, strMem)

	fmt.Print(t)
	return entries
}

// writeWireBaseline persists the wire hot-path entries as the committed
// regression baseline (BENCH_wire.json).
func writeWireBaseline(path string, scale int, entries []benchEntry) error {
	doc := struct {
		Note    string       `json:"note"`
		Command string       `json:"command"`
		Scale   int          `json:"scale"`
		Entries []benchEntry `json:"entries"`
	}{
		Note: "Wire hot-path baseline: streaming codec + pooled buffers + send " +
			"coalescing vs the self-contained gob path. Machine-dependent: compare " +
			"the speedup and allocs/op entries, not absolute rates. The " +
			"'vs committed pre-rewrite baseline' entry is relative to the " +
			"BENCH_remote.json mem flood recorded before the rewrite.",
		Command: "go run ./cmd/benchtables -wire -json-wire BENCH_wire.json",
		Scale:   scale,
		Entries: entries,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
