// Command benchtables regenerates the reproduction's performance
// comparison: every classical problem timed under all three concurrency
// models, plus model microbenchmarks (spawn, communication, and
// synchronization primitives). This is the quantitative side of the
// course's goal that students "investigate the efficiency of these
// implementations".
//
// Usage:
//
//	benchtables [-reps N] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/actors"
	"repro/internal/core"
	"repro/internal/coro"
	"repro/internal/metrics"
	_ "repro/internal/problems/registry"
	"repro/internal/threads"
)

func main() {
	reps := flag.Int("reps", 3, "repetitions per cell (median reported)")
	quick := flag.Bool("quick", false, "smaller workloads")
	flag.Parse()

	scale := 1
	if *quick {
		scale = 4
	}

	problemTable(*reps, scale)
	fmt.Println()
	microTable(*reps, scale)
}

// timeMedian runs fn reps times and returns the median duration.
func timeMedian(reps int, fn func() error) (time.Duration, error) {
	durs := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		durs = append(durs, float64(time.Since(start)))
	}
	med, err := metrics.Median(durs)
	if err != nil {
		return 0, err
	}
	return time.Duration(med), nil
}

func problemTable(reps, scale int) {
	t := metrics.NewTable("CROSS-MODEL PERFORMANCE: classical problems (median wall time)",
		"Problem", "threads", "actors", "coroutines", "fastest")
	params := map[string]core.Params{
		"boundedbuffer":      {"producers": 4, "consumers": 4, "items": 2000 / scale, "capacity": 16},
		"diningphilosophers": {"philosophers": 5, "meals": 400 / scale},
		"readerswriters":     {"readers": 6, "writers": 2, "ops": 1000 / scale},
		"sleepingbarber":     {"barbers": 2, "chairs": 4, "customers": 2000 / scale},
		"partymatching":      {"pairs": 1000 / scale},
		"singlelanebridge":   {"red": 3, "blue": 3, "crossings": 200 / scale},
		"bookinventory":      {"titles": 10, "clients": 6, "ops": 1000 / scale, "initial": 20},
		"sumworkers":         {"workers": 8, "n": 400000 / scale},
		"threadpool":         {"workers": 4, "tasks": 4000 / scale, "queue": 16},
	}
	for _, name := range core.Default.Names() {
		spec, _ := core.Default.Get(name)
		if len(spec.Runs) < len(core.AllModels) {
			continue // cross-model rows need all three models (skips chaos variants)
		}
		row := []string{name}
		best := core.Threads
		var bestDur time.Duration
		for _, m := range core.AllModels {
			d, err := timeMedian(reps, func() error {
				_, err := spec.Run(m, params[name], 1)
				return err
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchtables: %s/%s: %v\n", name, m, err)
				os.Exit(1)
			}
			row = append(row, d.Round(time.Microsecond).String())
			if bestDur == 0 || d < bestDur {
				bestDur, best = d, m
			}
		}
		row = append(row, best.String())
		t.AddRow(row...)
	}
	fmt.Print(t)
}

func microTable(reps, scale int) {
	t := metrics.NewTable("MODEL MICROBENCHMARKS (median, lower is better)",
		"Operation", "cost")
	n := 100000 / scale

	add := func(name string, per int, fn func() error) {
		d, err := timeMedian(reps, fn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %s: %v\n", name, err)
			os.Exit(1)
		}
		t.AddRow(name, fmt.Sprintf("%.0f ns/op", float64(d.Nanoseconds())/float64(per)))
	}

	add("goroutine spawn+join (threads substrate)", n, func() error {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go wg.Done()
		}
		wg.Wait()
		return nil
	})
	add("actor spawn+stop", n/10, func() error {
		sys := actors.NewSystem(actors.Config{})
		for i := 0; i < n/10; i++ {
			ref := sys.MustSpawn("a", func(ctx *actors.Context, msg any) {})
			_ = ref
		}
		sys.Shutdown()
		return nil
	})
	add("coroutine create+drain", n/10, func() error {
		for i := 0; i < n/10; i++ {
			co := coro.New(func(y *coro.Yielder, in any) any { return in })
			if _, _, err := co.Resume(nil); err != nil {
				return err
			}
		}
		return nil
	})
	add("monitor enter/exit", n, func() error {
		var m threads.Monitor
		for i := 0; i < n; i++ {
			m.Enter()
			m.Exit()
		}
		return nil
	})
	add("actor message round trip", n/10, func() error {
		sys := actors.NewSystem(actors.Config{})
		defer sys.Shutdown()
		done := make(chan struct{})
		count := 0
		var echo *actors.Ref
		pinger := sys.MustSpawn("pinger", func(ctx *actors.Context, msg any) {
			count++
			if count >= n/10 {
				close(done)
				return
			}
			ctx.Send(echo, struct{}{})
		})
		echo = sys.MustSpawn("echo", func(ctx *actors.Context, msg any) { ctx.Reply(msg) })
		pinger.Tell(struct{}{})
		<-done
		return nil
	})
	add("coroutine yield/resume round trip", n, func() error {
		co := coro.New(func(y *coro.Yielder, in any) any {
			for {
				y.Yield(nil)
			}
		})
		for i := 0; i < n; i++ {
			if _, _, err := co.Resume(nil); err != nil {
				return err
			}
		}
		return nil
	})
	fmt.Print(t)
}
