// Command benchtables regenerates the reproduction's performance
// comparison: every classical problem timed under all three concurrency
// models, plus model microbenchmarks (spawn, communication, and
// synchronization primitives). This is the quantitative side of the
// course's goal that students "investigate the efficiency of these
// implementations".
//
// Usage:
//
//	benchtables [-reps N] [-quick] [-json FILE] [-remote] [-json-remote FILE]
//	           [-obs] [-json-obs FILE] [-wire] [-json-wire FILE]
//	           [-overload] [-json-overload FILE]
//
// -json writes the mailbox/dispatcher numbers to FILE (the committed
// baseline lives at BENCH_mailbox.json; see docs/PERF.md). -remote appends
// the node-to-node wire table, and -json-remote writes it to FILE (the
// committed baseline lives at BENCH_remote.json; see docs/REMOTE.md).
// -obs appends the instrumentation-overhead table — the same Tell flood
// with observability off, on at the default sampling rate, with the
// conservation ledger, and timing every message — and -json-obs writes it
// to FILE (committed baseline: BENCH_obs.json; see docs/OBSERVABILITY.md).
// -wire appends the wire hot-path table — streaming codec vs self-contained
// gob, micro costs and end-to-end floods — and -json-wire writes it to FILE
// (committed baseline: BENCH_wire.json; see docs/REMOTE.md).
// -overload appends the overload-protection table — achieved throughput,
// ask p99, and shed volume at 1×/4×/16× the sink's service rate under
// credit-based flow control — and -json-overload writes it to FILE
// (committed baseline: BENCH_overload.json; see docs/REMOTE.md).
// -explore appends the pseudocode explorer throughput table — states/sec,
// transition counts with and without partial-order reduction, parallel
// rates, and the study ground-truth regeneration time — and -json-explore
// writes it to FILE (committed baseline: BENCH_explore.json; see
// docs/PERF.md). -explore-only runs just that table (CI smoke).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/actors"
	"repro/internal/core"
	"repro/internal/coro"
	"repro/internal/metrics"
	_ "repro/internal/problems/registry"
	"repro/internal/threads"
)

func main() {
	reps := flag.Int("reps", 3, "repetitions per cell (median reported)")
	quick := flag.Bool("quick", false, "smaller workloads")
	jsonPath := flag.String("json", "", "write the mailbox/dispatcher baseline to this file")
	withRemote := flag.Bool("remote", false, "also run the node-to-node wire table")
	jsonRemotePath := flag.String("json-remote", "", "write the remote wire baseline to this file (implies -remote)")
	withObs := flag.Bool("obs", false, "also run the instrumentation-overhead table")
	jsonObsPath := flag.String("json-obs", "", "write the instrumentation-overhead baseline to this file (implies -obs)")
	withWire := flag.Bool("wire", false, "also run the wire hot-path table")
	jsonWirePath := flag.String("json-wire", "", "write the wire hot-path baseline to this file (implies -wire)")
	withOverload := flag.Bool("overload", false, "also run the overload-protection table")
	jsonOverloadPath := flag.String("json-overload", "", "write the overload-protection baseline to this file (implies -overload)")
	withCluster := flag.Bool("cluster", false, "also run the cluster sharding table (full baseline: cmd/loadgen)")
	clusterOnly := flag.Bool("cluster-only", false, "run only the cluster sharding table (CI smoke)")
	withTrace := flag.Bool("trace", false, "also run the distributed-tracing overhead table")
	jsonTracePath := flag.String("json-trace", "", "write the tracing-overhead baseline to this file (implies -trace)")
	withExplore := flag.Bool("explore", false, "also run the pseudocode explorer throughput table")
	jsonExplorePath := flag.String("json-explore", "", "write the explorer baseline to this file (implies -explore)")
	exploreOnly := flag.Bool("explore-only", false, "run only the explorer throughput table (CI smoke)")
	flag.Parse()

	if *clusterOnly {
		clusterTable(*reps, scaleOf(*quick))
		return
	}
	if *exploreOnly {
		entries := exploreTable(*reps, scaleOf(*quick))
		if *jsonExplorePath != "" {
			if err := writeExploreBaseline(*jsonExplorePath, scaleOf(*quick), entries); err != nil {
				fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	scale := scaleOf(*quick)

	problemTable(*reps, scale)
	fmt.Println()
	microTable(*reps, scale)
	fmt.Println()
	entries := mailboxTable(*reps, scale)

	if *jsonPath != "" {
		if err := writeBaseline(*jsonPath, scale, entries); err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
			os.Exit(1)
		}
	}

	if *withRemote || *jsonRemotePath != "" {
		fmt.Println()
		remoteEntries := remoteTable(*reps, scale)
		if *jsonRemotePath != "" {
			if err := writeRemoteBaseline(*jsonRemotePath, scale, remoteEntries); err != nil {
				fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if *withObs || *jsonObsPath != "" {
		fmt.Println()
		obsEntries := obsTable(*reps, scale)
		if *jsonObsPath != "" {
			if err := writeObsBaseline(*jsonObsPath, scale, obsEntries); err != nil {
				fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if *withWire || *jsonWirePath != "" {
		fmt.Println()
		wireEntries := wireTable(*reps, scale)
		if *jsonWirePath != "" {
			if err := writeWireBaseline(*jsonWirePath, scale, wireEntries); err != nil {
				fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if *withOverload || *jsonOverloadPath != "" {
		fmt.Println()
		overloadEntries := overloadTable(*reps, scale)
		if *jsonOverloadPath != "" {
			if err := writeOverloadBaseline(*jsonOverloadPath, scale, overloadEntries); err != nil {
				fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if *withTrace || *jsonTracePath != "" {
		fmt.Println()
		traceEntries := traceTable(*reps, scale)
		if *jsonTracePath != "" {
			if err := writeTraceBaseline(*jsonTracePath, scale, traceEntries); err != nil {
				fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if *withExplore || *jsonExplorePath != "" {
		fmt.Println()
		exploreEntries := exploreTable(*reps, scale)
		if *jsonExplorePath != "" {
			if err := writeExploreBaseline(*jsonExplorePath, scale, exploreEntries); err != nil {
				fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if *withCluster {
		fmt.Println()
		clusterTable(*reps, scale)
	}
}

// scaleOf maps -quick to the workload divisor shared by every table.
func scaleOf(quick bool) int {
	if quick {
		return 4
	}
	return 1
}

// obsTable measures what turning observability on costs the actor hot path:
// the same 8-sender Tell flood with no Obs, with the default 1-in-64
// latency sampling, with sampling plus the exact conservation ledger, and
// timing every message (Sample=1). The overhead column is relative to the
// uninstrumented row; docs/OBSERVABILITY.md states the ≤15% bound for the
// default-sampling row, which the CI smoke job enforces.
func obsTable(reps, scale int) []benchEntry {
	t := metrics.NewTable("INSTRUMENTATION OVERHEAD: 8-sender Tell flood (docs/OBSERVABILITY.md)",
		"Case", "throughput", "overhead")
	var entries []benchEntry
	n := 200000 / scale

	obsCfg := func(sample int, conserve bool) actors.Config {
		o := actors.NewObs(metrics.NewRegistry(), "actors")
		o.Sample = sample
		o.Conserve = conserve
		return actors.Config{Obs: o}
	}
	cases := []struct {
		name string
		cfg  actors.Config
	}{
		{"no obs (baseline)", actors.Config{}},
		{"obs, sample 1/64 (default)", obsCfg(0, false)},
		{"obs + conservation ledger", obsCfg(0, true)},
		{"obs, every message (sample 1)", obsCfg(1, false)},
	}
	// Interleave the cases within each repetition rather than running each
	// case's reps back to back: overhead is a ratio between cases, and
	// machine drift (frequency scaling, a neighbor's load) over the seconds
	// a back-to-back sweep takes reads as fake overhead. Interleaving puts
	// every case under the same drift. Per case, take the best (fastest)
	// repetition, not the median: the flood runs hot for ~20ms, so any
	// scheduler hiccup only ever adds time, and on a shared machine those
	// additions dominate the median while the minimum converges on the
	// undisturbed cost — the same aggregation the CI smoke bound uses.
	best := make([]float64, len(cases))
	for r := 0; r < reps+1; r++ {
		for i, c := range cases {
			start := time.Now()
			if err := tellFloodOnce(c.cfg, 8, n); err != nil {
				fmt.Fprintf(os.Stderr, "benchtables: %s: %v\n", c.name, err)
				os.Exit(1)
			}
			d := float64(time.Since(start))
			if r == 0 {
				continue // warmup round: page in code, grow the heap
			}
			if best[i] == 0 || d < best[i] {
				best[i] = d
			}
		}
	}
	var base float64
	for i, c := range cases {
		rate := float64(n) / (best[i] / 1e9)
		overhead := "-"
		if i == 0 {
			base = rate
		} else if base > 0 {
			pct := (base - rate) / base * 100
			overhead = fmt.Sprintf("%+.1f%%", pct)
			entries = append(entries, benchEntry{Name: c.name, Metric: "overhead_pct", Value: pct})
		}
		t.AddRow(c.name, fmt.Sprintf("%.2fM msgs/sec", rate/1e6), overhead)
		entries = append(entries, benchEntry{Name: c.name, Metric: "msgs/sec", Value: rate})
	}
	fmt.Print(t)
	return entries
}

// writeObsBaseline persists the instrumentation-overhead entries as the
// committed regression baseline (BENCH_obs.json).
func writeObsBaseline(path string, scale int, entries []benchEntry) error {
	doc := struct {
		Note    string       `json:"note"`
		Command string       `json:"command"`
		Scale   int          `json:"scale"`
		Entries []benchEntry `json:"entries"`
	}{
		Note: "Instrumentation overhead baseline. Machine-dependent: compare the " +
			"overhead_pct entries (instrumented vs uninstrumented Tell), not the " +
			"absolute rates. The default-sampling row is the one bounded at 15%.",
		Command: "go run ./cmd/benchtables -json-obs BENCH_obs.json",
		Scale:   scale,
		Entries: entries,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// timeMedian runs fn reps times and returns the median duration.
func timeMedian(reps int, fn func() error) (time.Duration, error) {
	durs := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		durs = append(durs, float64(time.Since(start)))
	}
	med, err := metrics.Median(durs)
	if err != nil {
		return 0, err
	}
	return time.Duration(med), nil
}

func problemTable(reps, scale int) {
	t := metrics.NewTable("CROSS-MODEL PERFORMANCE: classical problems (median wall time)",
		"Problem", "threads", "actors", "coroutines", "fastest")
	params := map[string]core.Params{
		"boundedbuffer":      {"producers": 4, "consumers": 4, "items": 2000 / scale, "capacity": 16},
		"diningphilosophers": {"philosophers": 5, "meals": 400 / scale},
		"readerswriters":     {"readers": 6, "writers": 2, "ops": 1000 / scale},
		"sleepingbarber":     {"barbers": 2, "chairs": 4, "customers": 2000 / scale},
		"partymatching":      {"pairs": 1000 / scale},
		"singlelanebridge":   {"red": 3, "blue": 3, "crossings": 200 / scale},
		"bookinventory":      {"titles": 10, "clients": 6, "ops": 1000 / scale, "initial": 20},
		"sumworkers":         {"workers": 8, "n": 400000 / scale},
		"threadpool":         {"workers": 4, "tasks": 4000 / scale, "queue": 16},
	}
	for _, name := range core.Default.Names() {
		spec, _ := core.Default.Get(name)
		if len(spec.Runs) < len(core.AllModels) {
			continue // cross-model rows need all three models (skips chaos variants)
		}
		row := []string{name}
		best := core.Threads
		var bestDur time.Duration
		for _, m := range core.AllModels {
			d, err := timeMedian(reps, func() error {
				_, err := spec.Run(m, params[name], 1)
				return err
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchtables: %s/%s: %v\n", name, m, err)
				os.Exit(1)
			}
			row = append(row, d.Round(time.Microsecond).String())
			if bestDur == 0 || d < bestDur {
				bestDur, best = d, m
			}
		}
		row = append(row, best.String())
		t.AddRow(row...)
	}
	fmt.Print(t)
}

func microTable(reps, scale int) {
	t := metrics.NewTable("MODEL MICROBENCHMARKS (median, lower is better)",
		"Operation", "cost")
	n := 100000 / scale

	add := func(name string, per int, fn func() error) {
		d, err := timeMedian(reps, fn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %s: %v\n", name, err)
			os.Exit(1)
		}
		t.AddRow(name, fmt.Sprintf("%.0f ns/op", float64(d.Nanoseconds())/float64(per)))
	}

	add("goroutine spawn+join (threads substrate)", n, func() error {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go wg.Done()
		}
		wg.Wait()
		return nil
	})
	add("actor spawn+stop", n/10, func() error {
		sys := actors.NewSystem(actors.Config{})
		for i := 0; i < n/10; i++ {
			ref := sys.MustSpawn("a", func(ctx *actors.Context, msg any) {})
			_ = ref
		}
		sys.Shutdown()
		return nil
	})
	add("coroutine create+drain", n/10, func() error {
		for i := 0; i < n/10; i++ {
			co := coro.New(func(y *coro.Yielder, in any) any { return in })
			if _, _, err := co.Resume(nil); err != nil {
				return err
			}
		}
		return nil
	})
	add("monitor enter/exit", n, func() error {
		var m threads.Monitor
		for i := 0; i < n; i++ {
			m.Enter()
			m.Exit()
		}
		return nil
	})
	add("actor message round trip", n/10, func() error {
		sys := actors.NewSystem(actors.Config{})
		defer sys.Shutdown()
		done := make(chan struct{})
		count := 0
		var echo *actors.Ref
		pinger := sys.MustSpawn("pinger", func(ctx *actors.Context, msg any) {
			count++
			if count >= n/10 {
				close(done)
				return
			}
			ctx.Send(echo, struct{}{})
		})
		echo = sys.MustSpawn("echo", func(ctx *actors.Context, msg any) { ctx.Reply(msg) })
		pinger.Tell(struct{}{})
		<-done
		return nil
	})
	add("coroutine yield/resume round trip", n, func() error {
		co := coro.New(func(y *coro.Yielder, in any) any {
			for {
				y.Yield(nil)
			}
		})
		for i := 0; i < n; i++ {
			if _, _, err := co.Resume(nil); err != nil {
				return err
			}
		}
		return nil
	})
	fmt.Print(t)
}

// benchEntry is one row of the mailbox/dispatcher baseline (BENCH_mailbox.json).
type benchEntry struct {
	Name   string  `json:"name"`
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
}

// tellFloodOnce floods one actor with n messages from the given number of
// concurrent senders through the public Tell path, once.
func tellFloodOnce(cfg actors.Config, senders, n int) error {
	sys := actors.NewSystem(cfg)
	defer sys.Shutdown()
	done := make(chan struct{})
	count := 0
	sink := sys.MustSpawn("sink", func(ctx *actors.Context, msg any) {
		count++
		if count == n {
			close(done)
		}
	})
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		per := n / senders
		if s < n%senders {
			per++
		}
		wg.Add(1)
		go func(per int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sink.Tell(i)
			}
		}(per)
	}
	wg.Wait()
	<-done
	return nil
}

// tellThroughput returns the flood's msgs/sec (median of reps runs).
func tellThroughput(reps int, cfg actors.Config, senders, n int) (float64, error) {
	d, err := timeMedian(reps, func() error { return tellFloodOnce(cfg, senders, n) })
	if err != nil {
		return 0, err
	}
	return float64(n) / d.Seconds(), nil
}

// mailboxTable prints the actor hot-path numbers (see docs/PERF.md) and
// returns them for the -json baseline. The "locked mailbox" row forces the
// seed's mutex+cond path via a cap far above the workload, so the two rows
// isolate the chunked-ring rewrite on an otherwise identical system.
func mailboxTable(reps, scale int) []benchEntry {
	t := metrics.NewTable("ACTOR HOT PATH: mailbox & dispatcher (docs/PERF.md)",
		"Case", "value")
	var entries []benchEntry
	n := 200000 / scale

	addTell := func(name string, cfg actors.Config, senders int) {
		rate, err := tellThroughput(reps, cfg, senders, n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %s: %v\n", name, err)
			os.Exit(1)
		}
		t.AddRow(name, fmt.Sprintf("%.2fM msgs/sec", rate/1e6))
		entries = append(entries, benchEntry{Name: name, Metric: "msgs/sec", Value: rate})
	}
	lockCap := 1 << 30 // far above n: bounded semantics never bite
	addTell("tell ring mailbox, 1 sender", actors.Config{}, 1)
	addTell("tell ring mailbox, 8 senders", actors.Config{}, 8)
	addTell("tell locked mailbox, 8 senders", actors.Config{MailboxCap: lockCap}, 8)
	addTell("tell ring + pooled dispatch, 8 senders", actors.Config{Dispatcher: actors.Pooled}, 8)

	idle := 100000 / scale
	for _, mode := range []actors.DispatchMode{actors.Dedicated, actors.Pooled} {
		name := fmt.Sprintf("spawn %dk idle actors (%s)", idle/1000, mode)
		var perActor float64
		_, err := timeMedian(reps, func() error {
			before := runtime.NumGoroutine()
			sys := actors.NewSystem(actors.Config{Dispatcher: mode})
			for i := 0; i < idle; i++ {
				sys.MustSpawn("idle", func(ctx *actors.Context, msg any) {})
			}
			perActor = float64(runtime.NumGoroutine()-before) / float64(idle)
			sys.Shutdown()
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %s: %v\n", name, err)
			os.Exit(1)
		}
		t.AddRow(name, fmt.Sprintf("%.3f goroutines/actor", perActor))
		entries = append(entries, benchEntry{Name: name, Metric: "goroutines/actor", Value: perActor})
	}
	fmt.Print(t)
	return entries
}

// writeBaseline persists the mailbox/dispatcher entries as the committed
// regression baseline. Values are machine-dependent: the file records the
// shape of the numbers (ratios, goroutine counts), not portable absolutes.
func writeBaseline(path string, scale int, entries []benchEntry) error {
	doc := struct {
		Note    string       `json:"note"`
		Command string       `json:"command"`
		Scale   int          `json:"scale"`
		Entries []benchEntry `json:"entries"`
	}{
		Note: "Actor mailbox/dispatcher baseline. Machine-dependent: compare " +
			"ratios (ring vs locked, dedicated vs pooled), not absolutes.",
		Command: "go run ./cmd/benchtables -json BENCH_mailbox.json",
		Scale:   scale,
		Entries: entries,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
