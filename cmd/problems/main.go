// Command problems runs any of the course's classical concurrency problems
// under any of the three models, validating the run's invariants.
//
// Usage:
//
//	problems -list
//	problems -problem diningphilosophers -model actors [-seed N] [-param k=v ...]
//	problems -all [-seed N]        # run every problem under every model it implements
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	_ "repro/internal/problems/registry"
)

type paramFlags core.Params

func (p paramFlags) String() string { return fmt.Sprint(core.Params(p)) }

func (p paramFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want key=value, got %q", s)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return fmt.Errorf("value of %s: %w", k, err)
	}
	p[k] = n
	return nil
}

func main() {
	list := flag.Bool("list", false, "list the available problems")
	all := flag.Bool("all", false, "run every problem under every model")
	problem := flag.String("problem", "", "problem name")
	model := flag.String("model", "threads", "threads | actors | coroutines")
	seed := flag.Int64("seed", 1, "workload seed")
	params := paramFlags{}
	flag.Var(params, "param", "override a problem parameter, e.g. -param items=1000 (repeatable)")
	flag.Parse()

	switch {
	case *list:
		for _, name := range core.Default.Names() {
			spec, _ := core.Default.Get(name)
			fmt.Printf("%-20s %s (defaults: %s)\n", name, spec.Description, fmtParams(spec.Defaults))
		}
	case *all:
		failed := 0
		for _, name := range core.Default.Names() {
			spec, _ := core.Default.Get(name)
			for _, m := range core.AllModels {
				if spec.Runs[m] == nil {
					continue // e.g. the chaos variants are actors-only
				}
				metrics, err := spec.Run(m, core.Params(params), *seed)
				if err != nil {
					fmt.Printf("%-20s %-11s FAIL: %v\n", name, m, err)
					failed++
					continue
				}
				fmt.Printf("%-20s %-11s ok  %s\n", name, m, fmtMetrics(metrics))
			}
		}
		if failed > 0 {
			os.Exit(1)
		}
	case *problem != "":
		spec, err := core.Default.Get(*problem)
		if err != nil {
			fmt.Fprintln(os.Stderr, "problems:", err)
			os.Exit(2)
		}
		m, err := core.ParseModel(*model)
		if err != nil {
			fmt.Fprintln(os.Stderr, "problems:", err)
			os.Exit(2)
		}
		metrics, err := spec.Run(m, core.Params(params), *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "problems: run failed:", err)
			os.Exit(1)
		}
		fmt.Printf("%s under %s: validated\n%s\n", spec.Name, m, fmtMetrics(metrics))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fmtParams(p core.Params) string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, p[k])
	}
	return strings.Join(parts, " ")
}

func fmtMetrics(m core.Metrics) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, m[k])
	}
	return strings.Join(parts, " ")
}
