// Command problems runs any of the course's classical concurrency problems
// under any of the three models, validating the run's invariants.
//
// Usage:
//
//	problems -list
//	problems -problem diningphilosophers -model actors [-seed N] [-param k=v ...]
//	problems -all [-seed N]        # run every problem under every model it implements
//	problems -problem boundedbuffer -model actors -metrics   # + post-run metrics dump
//
// -metrics instruments all three runtimes (actor mailbox/handler latencies
// and the message-conservation ledger, monitor acquire/hold latencies and
// operation counts, coroutine resume latencies) and dumps the registry in
// Prometheus text format after the run.
//
// -detect attaches the online concurrency-bug detectors (internal/detect)
// to the run and reports findings afterwards; a correct run reports none.
// -record FILE captures the wire schedule of a distributed problem (one
// that runs over the in-process MemNetwork, e.g. singlelanebridge-remote)
// for deterministic re-execution with -replay FILE. See docs/DETECT.md:
//
//	problems -problem singlelanebridge-remote -model actors \
//	    -param drop=30 -record fail.wirelog
//	problems -problem singlelanebridge-remote -model actors -replay fail.wirelog
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/actors"
	"repro/internal/core"
	"repro/internal/coro"
	"repro/internal/detect"
	"repro/internal/metrics"
	_ "repro/internal/problems/registry"
	"repro/internal/remote"
	"repro/internal/threads"
	"repro/internal/trace"
)

type paramFlags core.Params

func (p paramFlags) String() string { return fmt.Sprint(core.Params(p)) }

func (p paramFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want key=value, got %q", s)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return fmt.Errorf("value of %s: %w", k, err)
	}
	p[k] = n
	return nil
}

func main() {
	list := flag.Bool("list", false, "list the available problems")
	all := flag.Bool("all", false, "run every problem under every model")
	problem := flag.String("problem", "", "problem name")
	model := flag.String("model", "threads", "threads | actors | coroutines")
	seed := flag.Int64("seed", 1, "workload seed")
	withMetrics := flag.Bool("metrics", false, "instrument the runtimes and dump post-run metrics (Prometheus text)")
	withDetect := flag.Bool("detect", false, "attach the concurrency-bug detectors and report findings after the run")
	recordPath := flag.String("record", "", "(-problem only) record the run's wire schedule (MemNetwork problems) to FILE")
	replayPath := flag.String("replay", "", "(-problem only) re-execute the wire schedule recorded in FILE")
	params := paramFlags{}
	flag.Var(params, "param", "override a problem parameter, e.g. -param items=1000 (repeatable)")
	flag.Parse()

	if (*recordPath != "" || *replayPath != "") && *problem == "" {
		fmt.Fprintln(os.Stderr, "problems: -record/-replay need -problem")
		os.Exit(2)
	}
	if *recordPath != "" && *replayPath != "" {
		fmt.Fprintln(os.Stderr, "problems: -record and -replay are mutually exclusive")
		os.Exit(2)
	}
	var rec *remote.WireRecording
	if *recordPath != "" {
		rec = remote.NewWireRecording(*seed)
		remote.SetAmbientRecording(rec)
	}
	if *replayPath != "" {
		loaded, err := remote.LoadWireRecording(*replayPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "problems:", err)
			os.Exit(1)
		}
		// The recording pins the workload seed too; an explicit -seed wins.
		seedSet := false
		flag.Visit(func(f *flag.Flag) { seedSet = seedSet || f.Name == "seed" })
		if !seedSet {
			*seed = loaded.Seed
		}
		remote.SetAmbientReplay(loaded)
		fmt.Printf("replaying %d recorded frames (%d drops) from %s, seed %d\n",
			loaded.Len(), loaded.Drops(), *replayPath, *seed)
	}

	var reg *metrics.Registry
	if *withMetrics {
		reg = instrumentRuntimes()
	}
	var suite *detect.Suite
	if *withDetect {
		tr := trace.NewRecorder()
		suite = detect.New()
		suite.Attach(tr)
		actors.SetDefaultRecorder(tr)
	}

	switch {
	case *list:
		for _, name := range core.Default.Names() {
			spec, _ := core.Default.Get(name)
			fmt.Printf("%-20s %s (defaults: %s)\n", name, spec.Description, fmtParams(spec.Defaults))
		}
	case *all:
		failed := 0
		for _, name := range core.Default.Names() {
			spec, _ := core.Default.Get(name)
			for _, m := range core.AllModels {
				if spec.Runs[m] == nil {
					continue // e.g. the chaos variants are actors-only
				}
				metrics, err := spec.Run(m, core.Params(params), *seed)
				if err != nil {
					fmt.Printf("%-20s %-11s FAIL: %v\n", name, m, err)
					failed++
					continue
				}
				fmt.Printf("%-20s %-11s ok  %s\n", name, m, fmtMetrics(metrics))
			}
		}
		dumpMetrics(reg)
		reportDetect(suite)
		if failed > 0 {
			os.Exit(1)
		}
	case *problem != "":
		spec, err := core.Default.Get(*problem)
		if err != nil {
			fmt.Fprintln(os.Stderr, "problems:", err)
			os.Exit(2)
		}
		m, err := core.ParseModel(*model)
		if err != nil {
			fmt.Fprintln(os.Stderr, "problems:", err)
			os.Exit(2)
		}
		metrics, err := spec.Run(m, core.Params(params), *seed)
		// Save even when the run failed: the recording of a failing chaos
		// run is exactly the repro artifact -replay wants.
		saveRecording(rec, *recordPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "problems: run failed:", err)
			os.Exit(1)
		}
		fmt.Printf("%s under %s: validated\n%s\n", spec.Name, m, fmtMetrics(metrics))
		dumpMetrics(reg)
		reportDetect(suite)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// instrumentRuntimes turns on the ambient observability of all three
// runtimes — the problem implementations construct their systems, monitors,
// and schedulers internally, so the flag reaches them through the
// process-wide defaults. Conservation accounting is on: a one-shot
// validated run wants exact ledgers more than peak throughput.
func instrumentRuntimes() *metrics.Registry {
	reg := metrics.NewRegistry()
	o := actors.NewObs(reg, "actors")
	o.Conserve = true
	actors.SetDefaultObs(o)
	threads.SetDefaultObs(threads.NewMonitorObs(reg, "threads.monitor"))
	coro.SetDefaultInstrument(reg, "coro")
	return reg
}

// reportDetect prints the detector verdict for a -detect run and exits
// nonzero when anything fired: a finding on a real run is signal.
func reportDetect(suite *detect.Suite) {
	if suite == nil {
		return
	}
	findings := suite.Findings()
	if len(findings) == 0 {
		fmt.Println("detectors: no findings")
		return
	}
	fmt.Printf("detectors: %d finding(s):\n", len(findings))
	for _, f := range findings {
		fmt.Printf("  %v\n", f)
	}
	os.Exit(1)
}

// saveRecording writes a -record capture to disk, warning when the workload
// never touched a MemNetwork (nothing to replay).
func saveRecording(rec *remote.WireRecording, path string) {
	if rec == nil {
		return
	}
	remote.SetAmbientRecording(nil)
	if err := rec.Save(path); err != nil {
		fmt.Fprintln(os.Stderr, "problems: save recording:", err)
		os.Exit(1)
	}
	if rec.Len() == 0 {
		fmt.Println("warning: recorded 0 wire frames — this problem runs no MemNetwork wire (try singlelanebridge-remote)")
		return
	}
	fmt.Printf("recorded %d wire frames (%d dropped) to %s; replay with -replay %s\n",
		rec.Len(), rec.Drops(), path, path)
}

// dumpMetrics writes the post-run registry as Prometheus text. The leading
// line is a Prometheus comment, so the dump stays machine-parseable.
func dumpMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	fmt.Println("# post-run metrics (Prometheus text format)")
	if err := reg.WritePrometheus(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "problems: metrics dump:", err)
	}
}

func fmtParams(p core.Params) string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, p[k])
	}
	return strings.Join(parts, " ")
}

func fmtMetrics(m core.Metrics) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, m[k])
	}
	return strings.Join(parts, " ")
}
