// Sequence diagram: the course's UML module generates sequence diagrams of
// critical scenarios by hand; here we record an actual run of the bridge
// protocol (one red car, one blue car) and emit the Mermaid sequence
// diagram plus the message-flow summary. Run with:
//
//	go run ./examples/sequencediagram
package main

import (
	"fmt"
	"time"

	"repro/internal/actors"
	"repro/internal/trace"
)

type enter struct{ isRed bool }
type entered struct{}
type exit struct{ isRed bool }
type exited struct{}

func main() {
	rec := trace.NewRecorder()
	sys := actors.NewSystem(actors.Config{Recorder: rec})
	defer sys.Shutdown()

	redOn, blueOn := 0, 0
	var waiting []*actors.Ref
	var waitingRed []bool
	bridge := sys.MustSpawn("bridge", func(ctx *actors.Context, msg any) {
		grant := func(to *actors.Ref, isRed bool) {
			if isRed {
				redOn++
			} else {
				blueOn++
			}
			ctx.Send(to, entered{})
		}
		switch m := msg.(type) {
		case enter:
			if (m.isRed && blueOn == 0) || (!m.isRed && redOn == 0) {
				grant(ctx.Sender(), m.isRed)
			} else {
				waiting = append(waiting, ctx.Sender())
				waitingRed = append(waitingRed, m.isRed)
			}
		case exit:
			if m.isRed {
				redOn--
			} else {
				blueOn--
			}
			ctx.Reply(exited{})
			for len(waiting) > 0 {
				ok := (waitingRed[0] && blueOn == 0) || (!waitingRed[0] && redOn == 0)
				if !ok {
					break
				}
				grant(waiting[0], waitingRed[0])
				waiting, waitingRed = waiting[1:], waitingRed[1:]
			}
		}
	})

	done := make(chan struct{}, 2)
	car := func(name string, isRed bool) {
		c := sys.MustSpawn(name, func(ctx *actors.Context, msg any) {
			switch msg.(type) {
			case string:
				ctx.Send(bridge, enter{isRed: isRed})
			case entered:
				ctx.Send(bridge, exit{isRed: isRed})
			case exited:
				done <- struct{}{}
				ctx.Stop()
			}
		})
		c.Tell("start")
	}
	car("redCarA", true)
	time.Sleep(5 * time.Millisecond) // let red request first, for a readable diagram
	car("blueCarA", false)
	<-done
	<-done
	sys.Shutdown()

	fmt.Println("Mermaid sequence diagram of the recorded run:")
	fmt.Println()
	fmt.Println(trace.SequenceDiagram(rec.Events()))
	fmt.Println("message flow:")
	fmt.Print(trace.FlowReport(rec.Events()))
	fmt.Printf("\ncausal span (critical path): %d of %d events; parallelism %.2f\n",
		trace.CriticalPath(rec.Events()), len(rec.Events()), trace.Parallelism(rec.Events()))
}
