// Remote actors demo: location transparency end to end. Two nodes exchange
// a ping-pong through ordinary actors.Ref values whose Tell/Ask cross a
// wire; every envelope carries a Lamport timestamp, so afterwards the two
// nodes' wire logs merge into one causal diagram. Then a partition splits
// the nodes mid-traffic: sends deadletter instead of blocking, AskRetry
// rides it out, and the link heals by reconnecting. Run with:
//
//	go run ./examples/remote
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/actors"
	"repro/internal/faults"
	"repro/internal/remote"
	"repro/internal/trace"
)

// Wire payloads: exported fields, registered with the codec.
type Ping struct{ N int }
type Pong struct{ N int }

func init() {
	remote.RegisterType(Ping{})
	remote.RegisterType(Pong{})
}

func main() {
	net := remote.NewMemNetwork()
	mk := func(addr string) *remote.Node {
		n, err := remote.NewNode(remote.Config{
			ListenAddr: addr,
			Transport:  net.Endpoint(addr),
			RecordWire: true,
			// Fast heartbeats so the partition demo detects the cut quickly.
			HeartbeatInterval: 5 * time.Millisecond,
			HeartbeatTimeout:  25 * time.Millisecond,
			ReconnectMin:      time.Millisecond,
			ReconnectMax:      20 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		return n
	}
	alice, bob := mk("alice"), mk("bob")
	defer alice.Close()
	defer bob.Close()

	fmt.Println("== 1. Ping-pong across nodes ==")
	pong := bob.System().MustSpawn("pong", func(ctx *actors.Context, msg any) {
		if p, ok := msg.(Ping); ok {
			ctx.Reply(Pong{N: p.N})
		}
	})
	bob.Register("pong", pong)

	// An ordinary Ref — Tell and Ask just work; the proxy does the wire.
	ref, err := alice.RefFor("pong@bob")
	if err != nil {
		log.Fatal(err)
	}
	if err := alice.Connect("bob", 2*time.Second); err != nil {
		log.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		r, err := actors.Ask(alice.System(), ref, Ping{N: i}, 2*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  alice asked Ping{%d}, got %v\n", i, r)
	}

	fmt.Println("\n== 2. The merged causal diagram (Lamport clocks) ==")
	merged := trace.MergeLamport(alice.LamportLog(), bob.LamportLog())
	fmt.Print(trace.FormatLamport(merged))
	fmt.Println("  (each recv is stamped after the send that caused it: one total order,")
	fmt.Println("   two machines — Lamport's happened-before relation on the wire)")

	fmt.Println("\n== 3. Partition: sends deadletter, AskRetry rides it out ==")
	part := faults.NewPartition()
	net.SetInjector(part)
	part.Cut("alice", "bob")
	fmt.Println("  link alice<->bob cut")

	// Give the heartbeat timeout time to declare the peer dead.
	time.Sleep(60 * time.Millisecond)
	before := alice.System().DeadLettersOf(actors.DLRemote)
	ref.Tell(Ping{N: 99})
	time.Sleep(10 * time.Millisecond)
	fmt.Printf("  Tell during partition: DLRemote deadletters %d -> %d (send did not block)\n",
		before, alice.System().DeadLettersOf(actors.DLRemote))

	// AskRetry keeps retrying through the outage; heal mid-retry.
	done := make(chan struct{})
	go func() {
		defer close(done)
		r, err := actors.AskRetry(alice.System(), ref, Ping{N: 100}, actors.RetryConfig{
			Attempts: 100,
			Timeout:  20 * time.Millisecond,
			Backoff:  2 * time.Millisecond,
			Jitter:   0.3,
			Seed:     7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  AskRetry survived the partition: got %v\n", r)
	}()
	time.Sleep(30 * time.Millisecond)
	part.HealAll()
	fmt.Println("  link healed; reconnecting...")
	<-done

	st := alice.Stats()
	fmt.Printf("\n  alice wire stats: sent=%d reconnects=%d heartbeat-timeouts=%d\n",
		st.Sent, st.Reconnects, st.HeartbeatTimeouts)
	fmt.Printf("  partition dropped %d frames\n", part.Dropped())
}
