// Single-lane bridge: the program behind the paper's Test 1 and Test 2.
// This example runs the bridge natively under all three models (validating
// the safety invariant), then uses the pseudocode explorer to show the
// questions the paper asked students: which scenarios are actually
// possible. Run with:
//
//	go run ./examples/singlelanebridge
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/problems/singlelanebridge"
	"repro/internal/pseudocode"
)

const bridgeSrc = `
redOnBridge = 0
blueOnBridge = 0
crossed = 0

DEFINE redEnter()
    EXC_ACC
        WHILE blueOnBridge > 0
            WAIT()
        ENDWHILE
        redOnBridge = redOnBridge + 1
    END_EXC_ACC
ENDDEF

DEFINE redExit()
    EXC_ACC
        redOnBridge = redOnBridge - 1
        crossed = crossed + 1
        NOTIFY()
    END_EXC_ACC
ENDDEF

DEFINE blueEnter()
    EXC_ACC
        WHILE redOnBridge > 0
            WAIT()
        ENDWHILE
        blueOnBridge = blueOnBridge + 1
    END_EXC_ACC
ENDDEF

DEFINE blueExit()
    EXC_ACC
        blueOnBridge = blueOnBridge - 1
        crossed = crossed + 1
        NOTIFY()
    END_EXC_ACC
ENDDEF

DEFINE redRun()
    redEnter()
    redExit()
ENDDEF

DEFINE blueRun()
    blueEnter()
    blueExit()
ENDDEF

PARA
    redRun()
    redRun()
    blueRun()
ENDPARA
PRINTLN crossed
`

func main() {
	// 1. Native implementations, all three models, invariants checked.
	spec := singlelanebridge.Spec()
	params := core.Params{"red": 3, "blue": 3, "crossings": 50}
	for _, m := range core.AllModels {
		metrics, err := spec.Run(m, params, 1)
		if err != nil {
			log.Fatalf("%s: %v", m, err)
		}
		fmt.Printf("%-11s crossings=%d maxSameDirection=%d (safety validated)\n",
			m, metrics["crossings"], metrics["maxSameDirection"])
	}

	// 2. The paper's question style: explore the pseudocode model.
	fmt.Println("\nexploring the pseudocode bridge (2 red cars, 1 blue car)...")
	ask := func(text string, pred func(w *pseudocode.World) bool) {
		hit, err := pseudocode.Reachable(bridgeSrc, pseudocode.Semantics{}, pred)
		if err != nil {
			log.Fatal(err)
		}
		answer := "NO"
		if hit {
			answer = "YES"
		}
		fmt.Printf("  %-68s %s\n", text, answer)
	}
	intg := func(w *pseudocode.World, name string) int64 {
		if v, ok := w.GetGlobal(name).(pseudocode.IntV); ok {
			return int64(v)
		}
		return 0
	}
	ask("Can both red cars be on the bridge at once?", func(w *pseudocode.World) bool {
		return intg(w, "redOnBridge") == 2
	})
	ask("Can a red car and the blue car be on the bridge at once?", func(w *pseudocode.World) bool {
		return intg(w, "redOnBridge") > 0 && intg(w, "blueOnBridge") > 0
	})
	ask("Can the program deadlock?", func(w *pseudocode.World) bool {
		return w.Classify() == pseudocode.Deadlocked
	})
	ask("Can it finish with fewer than 3 crossings?", func(w *pseudocode.World) bool {
		return w.Classify() == pseudocode.Completed && intg(w, "crossed") != 3
	})

	// 3. The same question under a misconception's semantics: S7 students
	// believe the lock is held for the whole method.
	hit, err := pseudocode.Reachable(bridgeSrc, pseudocode.Semantics{CoarseLock: true},
		func(w *pseudocode.World) bool {
			inside := 0
			for _, t := range w.Tasks {
				if !t.Done && !t.Waiting() && t.InFunction("redEnter") {
					inside++
				}
			}
			return inside >= 2
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nUnder the [I1]S7 misconception (lock held for the whole method), two\ncars executing inside redEnter becomes impossible (reachable: %v) —\nso S7 students answer NO where the true answer is YES.\n", hit)
}
