// Book inventory: the course's semester-long project, built twice — once as
// a shared-memory system and once as a message-passing system — plus the
// cooperative variant. This example runs a concurrent day of trading
// through each implementation and reconciles the ledgers. Run with:
//
//	go run ./examples/bookinventory
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/problems/bookinventory"
)

func main() {
	spec := bookinventory.Spec()
	params := core.Params{"titles": 12, "clients": 8, "ops": 500, "initial": 15}
	fmt.Println("book inventory: one trading day, three implementations")
	fmt.Println()
	for _, m := range core.AllModels {
		metrics, err := spec.Run(m, params, 2013)
		if err != nil {
			log.Fatalf("%s: %v", m, err)
		}
		fmt.Printf("%-11s sold=%-5d restocked=%-5d queries=%-5d rejected=%-4d (ledger reconciled)\n",
			m, metrics["sold"], metrics["restocked"], metrics["queries"], metrics["rejected"])
	}
	fmt.Println()
	fmt.Println("Each run validates: stock is conserved per title, never negative,")
	fmt.Println("and every successful purchase decremented exactly one copy.")
}
