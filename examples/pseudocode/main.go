// Pseudocode tour: the paper's Figures 3-5 executed by this repository's
// interpreter and explorer. For each figure program we print one concrete
// run and then the complete set of possible outputs — the "possibility 1 /
// possibility 2" lists from the paper. Run with:
//
//	go run ./examples/pseudocode
package main

import (
	"fmt"
	"log"

	"repro/internal/pseudocode"
)

var figures = []struct {
	name string
	src  string
}{
	{"Figure 3 (PARA block)", `
PARA
    PRINT "hello "
    PRINT "world "
ENDPARA
`},
	{"Figure 4 (EXC_ACC + WAIT/NOTIFY)", `
x = 10
DEFINE changeX(diff)
    EXC_ACC
        WHILE x + diff < 0
            WAIT()
        ENDWHILE
        x = x + diff
        NOTIFY()
    END_EXC_ACC
ENDDEF
PARA
    changeX(-11)
    changeX(1)
ENDPARA
PRINTLN x
`},
	{"Figure 5 (message passing)", `
CLASS Receiver
    DEFINE receive
        ON_RECEIVING
            MESSAGE.h(var)
                PRINT var
            MESSAGE.w(var)
                PRINTLN var
    ENDDEF
ENDCLASS
m1 = MESSAGE.h("hello ")
m2 = MESSAGE.w("world")
r1 = new Receiver()
r1.receive()
Send(m1).To(r1)
Send(m2).To(r1)
`},
}

func main() {
	for _, fig := range figures {
		fmt.Printf("== %s ==\n", fig.name)
		run, err := pseudocode.RunSource(fig.src, pseudocode.RunOpts{Seed: 42})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("one run (seed 42): %q\n", run.Output)
		res, err := pseudocode.ExploreSource(fig.src, pseudocode.ExploreOpts{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("all %d possibilities over %d states:\n", len(res.Outputs), res.StatesVisited)
		for i, o := range res.Outputs {
			fmt.Printf("  possibility %d: %q\n", i+1, o)
		}
		fmt.Println()
	}

	// Bonus: the same Figure 5 program under the [I2]M5 misconception
	// (messages received strictly in send order) loses a possibility.
	fmt.Println("== Figure 5 under the [I2]M5 misconception (FIFO delivery) ==")
	res, err := pseudocode.ExploreSource(figures[2].src, pseudocode.ExploreOpts{
		Sem: pseudocode.Semantics{FIFOMailboxes: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, o := range res.Outputs {
		fmt.Printf("  possibility %d: %q\n", i+1, o)
	}
	fmt.Println("A student holding M5 predicts only this output — and marks the")
	fmt.Println("other real possibility \"impossible\" on Test 1.")
}
