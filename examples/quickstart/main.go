// Quickstart: the same tiny job — ten workers incrementing a shared counter
// 1000 times each — written in the course's three concurrency models:
// threads (shared memory + monitor), Actors (message passing), and
// coroutines (cooperative scheduling). Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"repro/internal/actors"
	"repro/internal/coro"
	"repro/internal/threads"
)

const (
	workers = 10
	incs    = 1000
)

// threadsVersion guards the counter with a monitor — Java's synchronized
// in Go clothing.
func threadsVersion() int {
	var m threads.Monitor
	counter := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < incs; i++ {
				m.Enter()
				counter++
				m.Exit()
			}
		}()
	}
	wg.Wait()
	return counter
}

// actorsVersion owns the counter inside a single actor; workers send
// increment messages, so no locking is needed anywhere.
func actorsVersion() int {
	sys := actors.NewSystem(actors.Config{})
	defer sys.Shutdown()

	type inc struct{}
	type read struct{ reply chan int }

	counter := 0
	counterActor := sys.MustSpawn("counter", func(ctx *actors.Context, msg any) {
		switch m := msg.(type) {
		case inc:
			counter++
		case read:
			m.reply <- counter
		}
	})

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < incs; i++ {
				counterActor.Tell(inc{})
			}
		}()
	}
	wg.Wait()
	reply := make(chan int, 1)
	counterActor.Tell(read{reply: reply})
	return <-reply
}

// coroutinesVersion shares the counter between cooperative tasks; because
// only one task runs at a time and control moves only at Pause points, the
// bare increment is already atomic.
func coroutinesVersion() int {
	s := coro.NewScheduler()
	counter := 0
	for w := 0; w < workers; w++ {
		s.Go(fmt.Sprintf("worker-%d", w), func(tc *coro.TaskCtl) {
			for i := 0; i < incs; i++ {
				counter++
				if i%100 == 0 {
					tc.Pause()
				}
			}
		})
	}
	if err := s.Run(); err != nil {
		panic(err)
	}
	return counter
}

func main() {
	want := workers * incs
	fmt.Printf("threads    (shared memory): %d (want %d)\n", threadsVersion(), want)
	fmt.Printf("actors     (message passing): %d (want %d)\n", actorsVersion(), want)
	fmt.Printf("coroutines (cooperative): %d (want %d)\n", coroutinesVersion(), want)
}
