// State machine lab: the course's UML modeling module (Section IV.B).
// Model the book inventory as a state diagram once, then execute it under
// BOTH transformations the course teaches: monitor + condition variables
// (threads) and deferred messages (actors). Run with:
//
//	go run ./examples/statemachine
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/actors"
	"repro/internal/statemachine"
)

func main() {
	m := statemachine.BookInventoryMachine(3)
	fmt.Println("the diagram (Graphviz dot):")
	fmt.Println(m.ToDot())

	// Transformation 1: monitor + condition variables. Sellers block while
	// out of stock; a restocker wakes them.
	mm := statemachine.NewMonitorMachine(statemachine.BookInventoryMachine(3))
	var wg sync.WaitGroup
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := mm.Fire("sell"); err != nil {
					log.Fatal(err)
				}
			}
		}()
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				mm.TryFire("restock")
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	wg.Wait()
	close(stop)
	fmt.Printf("monitor executor: state=%s stock=%d sold=%d (15 concurrent sales, blocking on OutOfStock)\n",
		mm.State(), mm.Get("stock"), mm.Get("sold"))

	// Transformation 2: message passing. Same diagram, deferral protocol.
	sys := actors.NewSystem(actors.Config{})
	defer sys.Shutdown()
	am, err := statemachine.NewActorMachine(sys, statemachine.BookInventoryMachine(3))
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := am.Send("restock"); err != nil {
			log.Fatal(err)
		}
	}
	var wg2 sync.WaitGroup
	for s := 0; s < 15; s++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			if _, err := am.Call("sell", 10*time.Second); err != nil {
				log.Fatal(err)
			}
		}()
	}
	wg2.Wait()
	state, vars, steps := am.Snapshot()
	fmt.Printf("actor executor:   state=%s stock=%d sold=%d (%d steps; disabled sells deferred, not blocked)\n",
		state, vars["stock"], vars["sold"], len(steps))
}
