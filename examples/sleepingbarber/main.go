// Sleeping barber: one of the two problems students implement in all three
// languages during the course's labs. This example compares how the three
// models behave on the same shop configuration — the cooperative version
// turns customers away in bursts because arrivals aren't preempted, which
// is exactly the kind of model-behavior difference the course asks students
// to observe. Run with:
//
//	go run ./examples/sleepingbarber
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/problems/sleepingbarber"
)

func main() {
	spec := sleepingbarber.Spec()
	fmt.Println("sleeping barber: 2 barbers, 4 chairs, 300 customers")
	fmt.Println()
	for _, m := range core.AllModels {
		metrics, err := spec.Run(m, core.Params{"barbers": 2, "chairs": 4, "customers": 300}, 7)
		if err != nil {
			log.Fatalf("%s: %v", m, err)
		}
		fmt.Printf("%-11s served=%-4d turnedAway=%-4d maxWaiting=%d\n",
			m, metrics["served"], metrics["turnedAway"], metrics["maxWaiting"])
	}
	fmt.Println()
	fmt.Println("All three conserve customers (served + turnedAway = 300) and respect")
	fmt.Println("the waiting-room bound, but the *distribution* differs: preemptive")
	fmt.Println("models interleave arrivals with service, while the cooperative model")
	fmt.Println("runs each arrival to completion, so bursts fill the room instantly.")
}
