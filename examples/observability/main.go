// Observability walkthrough: one instrumented workload per runtime, a
// flight recorder that auto-dumps when a deadline is missed, and every
// exposition path the layer offers — latency summaries, a Prometheus text
// dump, a Chrome trace file for Perfetto, and (with -serve) the live
// /debug HTTP endpoints. Run with:
//
//	go run ./examples/observability
//	go run ./examples/observability -serve 127.0.0.1:6060   # then curl the endpoints
//
// The walkthrough mirrors docs/OBSERVABILITY.md section by section.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/actors"
	"repro/internal/coro"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/threads"
	"repro/internal/trace"
)

func main() {
	serveAddr := flag.String("serve", "", "serve /debug/metrics and /debug/flight on this address and block")
	flag.Parse()

	// One registry collects every runtime's series; one flight recorder
	// keeps the last few hundred events per task, always on.
	reg := metrics.NewRegistry()
	rec := trace.NewFlightRecorder(256)
	rec.OnDump(func(reason string, events []trace.Event) {
		fmt.Printf("\n** flight recorder dumped (%s): %d events retained **\n", reason, len(events))
	})

	actorsWorkload(reg, rec)
	threadsWorkload(reg, rec)
	coroWorkload(reg)

	fmt.Println("\n-- latency summaries (p50/p95/p99 from the log-bucketed histograms) --")
	for _, name := range []string{
		"actors.mailbox.wait_ns", "actors.handler_ns",
		"threads.monitor.acquire_wait_ns", "threads.monitor.hold_ns",
		"coro.resume_ns",
	} {
		h := reg.Histogram(name)
		fmt.Printf("  %-32s %s\n", name, h.Summary())
	}

	fmt.Println("\n-- Prometheus text dump (what /debug/metrics serves) --")
	if err := reg.WritePrometheus(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "observability:", err)
		os.Exit(1)
	}

	// The flight recorder's window exports as Chrome trace JSON: open
	// trace.json in Perfetto (ui.perfetto.dev) or chrome://tracing and
	// every task is a row on the timeline.
	f, err := os.Create("trace.json")
	if err != nil {
		fmt.Fprintln(os.Stderr, "observability:", err)
		os.Exit(1)
	}
	if err := trace.ExportChrome(f, rec.Events()); err != nil {
		fmt.Fprintln(os.Stderr, "observability:", err)
		os.Exit(1)
	}
	f.Close()
	fmt.Printf("\nwrote trace.json (%d events) — open it in Perfetto\n", len(rec.Events()))

	if *serveAddr != "" {
		_, bound, err := obs.Serve(*serveAddr, reg, rec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "observability:", err)
			os.Exit(1)
		}
		fmt.Printf("serving http://%s/debug/metrics and http://%s/debug/flight — ctrl-C to stop\n", bound, bound)
		select {}
	}
}

// actorsWorkload floods a small pipeline with the conservation ledger on,
// then checks the ledger: every message enqueued was processed or drained.
func actorsWorkload(reg *metrics.Registry, rec *trace.Recorder) {
	fmt.Println("-- actors: sampled mailbox/handler latencies + conservation ledger --")
	o := actors.NewObs(reg, "actors")
	o.Conserve = true
	sys := actors.NewSystem(actors.Config{Obs: o, Recorder: rec})

	const msgs = 5000
	done := make(chan struct{})
	seen := 0
	sink := sys.MustSpawn("sink", func(ctx *actors.Context, msg any) {
		seen++
		if seen == msgs {
			close(done)
		}
	})
	relay := sys.MustSpawn("relay", func(ctx *actors.Context, msg any) {
		ctx.Send(sink, msg)
	})
	for i := 0; i < msgs; i++ {
		relay.Tell(i)
	}
	<-done
	sys.Shutdown()
	if err := sys.CheckConservation(); err != nil {
		fmt.Fprintln(os.Stderr, "observability:", err)
		os.Exit(1)
	}
	fmt.Printf("  %d messages relayed; conservation holds: enqueued=%d = dequeued=%d + drained=%d\n",
		msgs, sys.MessagesEnqueued(), sys.MessagesDequeued(), sys.MessagesDrained())
}

// threadsWorkload hammers one monitor from four goroutines, then misses a
// WaitFor deadline on purpose — the KindFault event triggers the flight
// recorder's auto-dump, which is the whole point of keeping it always on.
func threadsWorkload(reg *metrics.Registry, rec *trace.Recorder) {
	fmt.Println("-- threads: monitor acquire/hold latencies, then a missed deadline --")
	var m threads.Monitor
	o := threads.NewMonitorObs(reg, "threads.monitor")
	o.SetRecorder(rec, "demo")
	m.SetObs(o)

	counter := 0
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			label := fmt.Sprintf("worker-%d", id)
			for i := 0; i < 500; i++ {
				m.EnterAs(label)
				counter++
				m.Exit()
			}
		}(w)
	}
	wg.Wait()

	// Nobody will ever notify "ready": the WaitFor deadline fires, the miss
	// is counted, and the KindFault event auto-dumps the flight recorder.
	m.EnterAs("waiter")
	_ = m.WaitFor("ready", 10*time.Millisecond)
	m.Exit()

	fmt.Printf("  counter=%d enters=%d exits=%d deadline misses=%d\n",
		counter, o.Enters(), o.Exits(), o.DeadlineMisses())
}

// coroWorkload runs a generator/consumer pair under an instrumented
// scheduler: resume latency is sampled, gauges track the round state.
func coroWorkload(reg *metrics.Registry) {
	fmt.Println("-- coro: sampled resume latency --")
	s := coro.NewScheduler()
	s.Instrument(reg, "coro")
	produced, consumed := 0, 0
	s.Go("producer", func(tc *coro.TaskCtl) {
		for i := 0; i < 1000; i++ {
			produced++
			tc.Pause()
		}
	})
	s.Go("consumer", func(tc *coro.TaskCtl) {
		for consumed < 1000 {
			tc.WaitUntil(func() bool { return consumed < produced })
			consumed++
		}
	})
	if err := s.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "observability:", err)
		os.Exit(1)
	}
	fmt.Printf("  produced=%d consumed=%d\n", produced, consumed)
}
