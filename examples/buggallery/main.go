// Bug gallery: the course's bug-study homework made executable. Each
// classical concurrency defect is a buggy/fixed pseudocode pair; the
// explorer proves the bug exists (finds a witness interleaving) and that
// the fix removes it. Run with:
//
//	go run ./examples/buggallery
package main

import (
	"fmt"
	"log"

	"repro/internal/bugs"
)

func main() {
	fmt.Println("concurrency bug gallery — every defect proven, every fix verified")
	fmt.Println()
	for _, b := range bugs.Gallery() {
		buggy, fixed, err := b.Check()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bugs.Report(&b, buggy, fixed))
		fmt.Printf("    %s\n", b.Description)
		if b.Name == "lost-update" {
			fmt.Printf("    buggy outcomes: %q  fixed outcomes: %q\n", buggy.Outputs, fixed.Outputs)
		}
		// Entries with a trace-detector witness also run live on the actor
		// runtime: the detector must flag the buggy rendition and stay
		// silent on the fixed one.
		if b.Detector != nil {
			evidence, err := b.CheckDetector()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("    live detector evidence: %s\n", evidence)
		}
		fmt.Println()
	}
	fmt.Println("Each pseudocode witness is a reachability fact over the exhaustive")
	fmt.Println("execution space — not a lucky schedule — and each detector witness")
	fmt.Println("is an online trace-analysis verdict on the real runtime.")
}
