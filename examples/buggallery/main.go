// Bug gallery: the course's bug-study homework made executable. Each
// classical concurrency defect is a buggy/fixed pseudocode pair; the
// explorer proves the bug exists (finds a witness interleaving) and that
// the fix removes it. Run with:
//
//	go run ./examples/buggallery
package main

import (
	"fmt"
	"log"

	"repro/internal/bugs"
)

func main() {
	fmt.Println("concurrency bug gallery — every defect proven, every fix verified")
	fmt.Println()
	for _, b := range bugs.Gallery() {
		buggy, fixed, err := b.Check()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bugs.Report(&b, buggy, fixed))
		fmt.Printf("    %s\n", b.Description)
		if b.Name == "lost-update" {
			fmt.Printf("    buggy outcomes: %q  fixed outcomes: %q\n", buggy.Outputs, fixed.Outputs)
		}
		fmt.Println()
	}
	fmt.Println("Each witness is a reachability fact over the exhaustive execution")
	fmt.Println("space — not a lucky schedule. Re-run with different seeds changes")
	fmt.Println("nothing, which is the point.")
}
