// Misconceptions: execute the same program under the *wrong* semantics the
// paper's students believed (Table III) and watch the answers flip — the
// mechanism behind the simulated study. Run with:
//
//	go run ./examples/misconceptions
package main

import (
	"fmt"
	"log"

	"repro/internal/pseudocode"
)

const program = `
x = 10
DEFINE changeX(diff)
    EXC_ACC
        WHILE x + diff < 0
            WAIT()
        ENDWHILE
        x = x + diff
        NOTIFY()
    END_EXC_ACC
ENDDEF
PARA
    changeX(-11)
    changeX(1)
ENDPARA
PRINTLN x
`

const msgProgram = `
CLASS Receiver
    DEFINE receive
        ON_RECEIVING
            MESSAGE.h(v)
                PRINT v
            MESSAGE.w(v)
                PRINTLN v
    ENDDEF
ENDCLASS
m1 = MESSAGE.h("hello ")
m2 = MESSAGE.w("world")
r1 = new Receiver()
r1.receive()
Send(m1).To(r1)
Send(m2).To(r1)
`

func explore(src string, sem pseudocode.Semantics) *pseudocode.ExploreResult {
	res, err := pseudocode.ExploreSource(src, pseudocode.ExploreOpts{Sem: sem})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("The paper's Figure 4 program (WAIT/NOTIFY), under four belief systems:")
	fmt.Println()
	rows := []struct {
		name string
		sem  pseudocode.Semantics
	}{
		{"true semantics", pseudocode.Semantics{}},
		{"[I1]S7 lock spans whole call (CoarseLock)", pseudocode.Semantics{CoarseLock: true}},
		{"WAIT keeps the lock (WaitKeepsLock)", pseudocode.Semantics{WaitKeepsLock: true}},
		{"Java-style notify-one (ablation)", pseudocode.Semantics{NotifyWakesOne: true}},
	}
	for _, r := range rows {
		res := explore(program, r.sem)
		fmt.Printf("  %-44s outputs=%-8q deadlocks=%d\n", r.name, res.Outputs, res.Deadlocks)
	}

	fmt.Println()
	fmt.Println("Figure 5 (message passing), true vs [I2]M5 (FIFO) vs [C1]M3 (sync send):")
	fmt.Println()
	rows2 := []struct {
		name string
		sem  pseudocode.Semantics
	}{
		{"true semantics", pseudocode.Semantics{}},
		{"[I2]M5 messages arrive in send order", pseudocode.Semantics{FIFOMailboxes: true}},
		{"[C1]M3 sends are synchronous", pseudocode.Semantics{SendSynchronous: true}},
	}
	for _, r := range rows2 {
		res := explore(msgProgram, r.sem)
		fmt.Printf("  %-44s outputs=%q deadlocks=%d\n", r.name, res.Outputs, res.Deadlocks)
	}
	fmt.Println()
	fmt.Println("A student answering a YES/NO reachability question from inside one of")
	fmt.Println("these belief systems reproduces exactly the wrong answers of the")
	fmt.Println("paper's Table III — that is how internal/study simulates the cohort.")
}
