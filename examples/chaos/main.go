// Chaos demo: the fault-tolerance layer end to end. A supervised actor
// panics under a seeded fault injector and is restarted with backoff; then
// the two chaos problem variants (bounded buffer, single-lane bridge) run
// their full workloads while the injector crashes the central actor, drops
// requests, and stalls its mailbox — and still finish correctly. Run with:
//
//	go run ./examples/chaos -seed 42
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/actors"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/problems/boundedbuffer"
	"repro/internal/problems/singlelanebridge"
)

func main() {
	seed := flag.Int64("seed", 42, "fault-injection seed")
	flag.Parse()

	fmt.Println("== 1. Supervision: a crashing actor, restarted with backoff ==")
	supervisionDemo()

	fmt.Printf("\n== 2. Bounded buffer under chaos (seed %d) ==\n", *seed)
	runChaos("boundedbuffer-chaos", boundedbuffer.ChaosSpec(), *seed)

	fmt.Printf("\n== 3. Single-lane bridge under chaos (seed %d) ==\n", *seed)
	runChaos("singlelanebridge-chaos", singlelanebridge.ChaosSpec(), *seed)
}

// supervisionDemo shows the lifecycle events a supervisor emits while a
// fault injector kills a worker on every 3rd message.
func supervisionDemo() {
	inj := faults.CrashOnNth(3, faults.All(
		faults.AtSite(faults.SiteBehavior), faults.OnActor("worker")))
	events := make(chan string, 64)
	sys := actors.NewSystem(actors.Config{
		Injector: inj,
		OnLifecycle: func(ev actors.LifecycleEvent) {
			events <- fmt.Sprintf("  [%s] %s (restarts so far: %d)", ev.Kind, ev.Ref.Name(), ev.Restarts)
		},
	})
	defer sys.Shutdown()
	sup := sys.Supervise("demo-sup", actors.SupervisorSpec{
		Strategy:    actors.OneForOne,
		MaxRestarts: 10,
		Backoff:     time.Millisecond,
	})

	processed := 0 // external state: survives restarts
	worker := sup.MustSpawn("worker", func() actors.Behavior {
		return func(ctx *actors.Context, msg any) { processed++ }
	})
	const n = 10
	for i := 0; i < n; i++ {
		worker.Tell(i)
	}
	deadline := time.Now().Add(2 * time.Second)
	for processed+int(sys.FaultsInjected()) < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Drain without closing: Shutdown below still emits Stopped events.
	for {
		select {
		case line := <-events:
			fmt.Println(line)
			continue
		default:
		}
		break
	}
	fmt.Printf("  sent %d messages: %d processed, %d lost to injected crashes, %d restarts\n",
		n, processed, sys.FaultsInjected(), sys.Restarts())
}

// runChaos executes one chaos spec under the actor model and prints its
// metrics, which include the fault and restart counters.
func runChaos(name string, spec *core.Spec, seed int64) {
	start := time.Now()
	m, err := spec.Run(core.Actors, spec.Defaults, seed)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-16s %d\n", k, m[k])
	}
	fmt.Printf("  completed correctly in %v despite the injected faults\n",
		time.Since(start).Round(time.Millisecond))
}
